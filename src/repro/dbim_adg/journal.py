"""The IM-ADG Journal (paper, section III-C, Fig. 7).

"The core structure of the IM-ADG Journal contains an in-memory hash table
mapping a transaction identifier to its invalidation records.  The hash
table is sized based on the degree of parallelism employed by the ADG
architecture, to ensure minimal contention between the recovery worker
processes. [...] The resulting hash-chains are protected using a 'bucket
latch'. [...] Once an anchor node is created for a transaction, each
recovery worker is provided its own area in the anchor node to buffer the
invalidation records it mines.  This gets rid of all synchronization needed
between multiple recovery workers mining invalidation records for a
transaction."

Latch discipline here mirrors that: hash-chain lookup/insert/delete takes
the bucket latch (a miss makes the caller retry on its next step, like a
spinning process), while appends into a worker's own buffer area are
latch-free.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

import numpy as np

from repro import obs
from repro.common.ids import DBA, ObjectId, TenantId, TransactionId, WorkerId
from repro.common.latch import BucketLatchSet
from repro.common.scn import SCN


@dataclass(frozen=True, slots=True)
class InvalidationRecord:
    """One mined tuple (paper, Fig. 6): which rows of which block of which
    object a transaction modified, plus the tenant for multi-tenancy.

    ``slots`` empty means the whole block is affected (e.g. truncate).
    ``scn`` is the SCN of the sniffed change vector.
    """

    object_id: ObjectId
    dba: DBA
    slots: tuple[int, ...]
    tenant: TenantId
    scn: SCN


@dataclass(slots=True)
class RecordChunk:
    """One bulk-mined slice of a transaction's invalidation data:
    row-aligned arrays appended latch-free into a worker's buffer area
    (the columnar counterpart of a run of :class:`InvalidationRecord`).
    A ``slots`` entry < 0 means the whole block is affected."""

    object_ids: np.ndarray
    dbas: np.ndarray
    slots: np.ndarray
    scns: np.ndarray
    tenant: TenantId

    def __len__(self) -> int:
        return int(self.dbas.size)

    def records(self) -> Iterator[InvalidationRecord]:
        tenant = self.tenant
        for i in range(self.dbas.size):
            slot = int(self.slots[i])
            yield InvalidationRecord(
                object_id=int(self.object_ids[i]),
                dba=int(self.dbas[i]),
                slots=(slot,) if slot >= 0 else (),
                tenant=tenant,
                scn=int(self.scns[i]),
            )


@dataclass(slots=True)
class AnchorNode:
    """Hash-table node anchoring one transaction's invalidation records."""

    xid: TransactionId
    tenant: TenantId
    #: True once the 'transaction begin' control CV has been mined; a
    #: commit arriving without it signals a pre-restart transaction
    #: (paper, III-E).
    has_begin: bool = False
    prepared: bool = False
    #: Per-worker buffer areas -- appends need no synchronisation.
    worker_records: dict[WorkerId, list[InvalidationRecord]] = field(
        default_factory=dict
    )
    #: Per-worker *columnar* buffer areas (bulk-mined RecordChunks).
    worker_chunks: dict[WorkerId, list[RecordChunk]] = field(
        default_factory=dict
    )
    #: Owning journal's floor-heap feed: called with (scn, xid) whenever
    #: ``first_scn`` is lowered, so ``min_first_scn`` stays O(log n).
    floor_sink: Optional[Callable[[SCN, TransactionId], None]] = None
    #: SCN of the earliest CV mined for this transaction (0 = none yet).
    #: The checkpoint store records the minimum over live anchors as the
    #: redo-tail replay floor: everything an instant restart must re-mine
    #: for this transaction lies at or beyond it.
    first_scn: SCN = 0
    #: Adaptive record granularity (None = keep every physical record).
    #: Once one worker buffers this many slot-level records for a block,
    #: they collapse into a single whole-block command-style marker.
    collapse_threshold: int | None = None
    #: Per-(worker, object, dba) slot-record counts; dbas collapsed to a
    #: whole-block marker map to -1 (further slot records are dropped).
    _dba_counts: dict[tuple, int] = field(default_factory=dict)
    records_collapsed: int = 0

    def note_scn(self, scn: SCN) -> None:
        if self.first_scn == 0 or scn < self.first_scn:
            self.first_scn = scn
            if self.floor_sink is not None:
                self.floor_sink(scn, self.xid)

    def add(self, worker_id: WorkerId, record: InvalidationRecord) -> None:
        self.note_scn(record.scn)
        records = self.worker_records.setdefault(worker_id, [])
        threshold = self.collapse_threshold
        if threshold is None or not record.slots:
            records.append(record)
            return
        key = (worker_id, record.object_id, record.dba)
        count = self._dba_counts.get(key, 0)
        if count < 0:
            # already collapsed to a whole-block marker: invalidation is
            # monotone, so the slot record is subsumed
            self.records_collapsed += 1
            return
        count += 1
        if count < threshold:
            self._dba_counts[key] = count
            records.append(record)
            return
        # hot block: replace its buffered slot records with one
        # command-style whole-block marker (slots=() means "all")
        self._dba_counts[key] = -1
        kept = [
            r for r in records
            if not (r.object_id == record.object_id and r.dba == record.dba)
        ]
        self.records_collapsed += len(records) - len(kept) + 1
        kept.append(
            InvalidationRecord(
                object_id=record.object_id,
                dba=record.dba,
                slots=(),
                tenant=record.tenant,
                scn=record.scn,
            )
        )
        self.worker_records[worker_id] = kept

    def add_batch(
        self,
        worker_id: WorkerId,
        object_ids: np.ndarray,
        dbas: np.ndarray,
        slots: np.ndarray,
        scns: np.ndarray,
        tenant: TenantId,
    ) -> None:
        """Append one bulk-mined slice into this worker's buffer area
        (latch-free, like :meth:`add`; arrays are row-aligned and in SCN
        order).  Anchors with adaptive collapse fall back to per-record
        adds so the collapse counters stay exact."""
        if dbas.size == 0:
            return
        if self.collapse_threshold is not None:
            for i in range(dbas.size):
                slot = int(slots[i])
                self.add(
                    worker_id,
                    InvalidationRecord(
                        object_id=int(object_ids[i]),
                        dba=int(dbas[i]),
                        slots=(slot,) if slot >= 0 else (),
                        tenant=tenant,
                        scn=int(scns[i]),
                    ),
                )
            return
        self.note_scn(int(scns.min()))
        self.worker_chunks.setdefault(worker_id, []).append(
            RecordChunk(object_ids, dbas, slots, scns, tenant)
        )

    def all_records(self) -> Iterator[InvalidationRecord]:
        for records in self.worker_records.values():
            yield from records
        for chunks in self.worker_chunks.values():
            for chunk in chunks:
                yield from chunk.records()

    @property
    def n_records(self) -> int:
        return sum(len(r) for r in self.worker_records.values()) + sum(
            len(c) for chunks in self.worker_chunks.values() for c in chunks
        )


class IMADGJournal:
    """Hash table of anchor nodes with bucket latches."""

    anchors_created = obs.view("_anchors_created")

    latch_breaks = obs.view("_latch_breaks")

    def __init__(
        self,
        n_buckets: int = 64,
        collapse_threshold: int | None = None,
    ) -> None:
        if n_buckets < 1:
            raise ValueError("journal needs at least one bucket")
        self._buckets: list[dict[TransactionId, AnchorNode]] = [
            {} for __ in range(n_buckets)
        ]
        self.latches = BucketLatchSet(n_buckets, name="im-adg-journal")
        #: Adaptive record granularity, inherited by every anchor (see
        #: :class:`AnchorNode`); None keeps all records physical.
        self.collapse_threshold = collapse_threshold
        #: Lazy-deletion min-heap of (first_scn, xid) floor candidates;
        #: fed by every anchor's ``floor_sink``, consumed (and pruned of
        #: stale entries) by :meth:`min_first_scn`.
        self._floor_heap: list[tuple[SCN, TransactionId]] = []
        self._anchors_created = obs.counter("dbim.journal.anchors_created")
        self._latch_breaks = obs.counter("dbim.journal.latch_breaks")

    def _note_floor(self, scn: SCN, xid: TransactionId) -> None:
        heapq.heappush(self._floor_heap, (scn, xid))

    def _bucket_index(self, xid: TransactionId) -> int:
        return hash(xid) % len(self._buckets)

    # Every operation takes the bucket latch for the duration of the call
    # and returns None/False on a miss; callers retry on their next step.

    def get_or_create(
        self, xid: TransactionId, tenant: TenantId, owner: object
    ) -> Optional[AnchorNode]:
        index = self._bucket_index(xid)
        latch = self.latches.latch_for(index)
        if not latch.try_acquire(owner):
            return None
        try:
            anchor = self._buckets[index].get(xid)
            if anchor is None:
                anchor = AnchorNode(
                    xid=xid, tenant=tenant,
                    collapse_threshold=self.collapse_threshold,
                )
                anchor.floor_sink = self._note_floor
                self._buckets[index][xid] = anchor
                self._anchors_created.inc()
            return anchor
        finally:
            latch.release(owner)

    def get(
        self, xid: TransactionId, owner: object
    ) -> tuple[bool, Optional[AnchorNode]]:
        """Returns (latch acquired, anchor-or-None)."""
        index = self._bucket_index(xid)
        latch = self.latches.latch_for(index)
        if not latch.try_acquire(owner):
            return False, None
        try:
            return True, self._buckets[index].get(xid)
        finally:
            latch.release(owner)

    def remove(self, xid: TransactionId, owner: object) -> Optional[bool]:
        """Remove an anchor.  None = latch miss (retry); bool = removed."""
        index = self._bucket_index(xid)
        latch = self.latches.latch_for(index)
        if not latch.try_acquire(owner):
            return None
        try:
            return self._buckets[index].pop(xid, None) is not None
        finally:
            latch.release(owner)

    # ------------------------------------------------------------------
    # latch recovery (bounded retry, then break the dead owner's latch)
    # ------------------------------------------------------------------
    # A bucket latch observed held by someone else can only belong to a
    # crashed or stalled actor: every legitimate critical section on the
    # journal is contained within a single scheduler step, so no live
    # actor ever holds a bucket latch while another actor runs.  The
    # recovery variants spin a bounded number of times (in case of a
    # same-step recursive-owner edge) and then break the latch, exactly
    # like PMON cleaning up after a dead process.

    def _recover_latch(self, index: int) -> None:
        latch = self.latches.latch_for(index)
        broken = latch.break_held()
        if broken is not None:
            self._latch_breaks.inc()

    def remove_with_recovery(
        self, xid: TransactionId, owner: object, spins: int = 3
    ) -> bool:
        """Like :meth:`remove`, but never livelocks: after ``spins``
        failed attempts the (necessarily dead) holder's latch is broken.
        """
        for __ in range(spins):
            removed = self.remove(xid, owner)
            if removed is not None:
                return removed
        self._recover_latch(self._bucket_index(xid))
        removed = self.remove(xid, owner)
        assert removed is not None
        return removed

    def get_with_recovery(
        self, xid: TransactionId, owner: object, spins: int = 3
    ) -> Optional[AnchorNode]:
        """Like :meth:`get`, but breaks a dead holder's latch instead of
        reporting a miss forever."""
        for __ in range(spins):
            acquired, anchor = self.get(xid, owner)
            if acquired:
                return anchor
        self._recover_latch(self._bucket_index(xid))
        acquired, anchor = self.get(xid, owner)
        assert acquired
        return anchor

    def min_first_scn(self) -> SCN:
        """Earliest first-CV SCN over every live anchor (0 = no anchors).

        O(log n) via the lazy-deletion floor heap instead of a full
        anchor scan: the heap top is the global minimum candidate; an
        entry is stale -- and popped -- when its anchor is gone
        (committed/aborted/removed) or was re-created with a different
        floor.  ``first_scn`` only ever decreases on a live anchor, and
        every decrease pushes a fresh entry, so a surviving top entry
        matching its anchor's ``first_scn`` is exact.

        Read latch-free: the checkpoint writer runs inside a single
        scheduler step (under the shared quiesce lock), and every journal
        critical section is likewise contained within one step, so no
        concurrent mutation can be in flight.
        """
        heap = self._floor_heap
        while heap:
            scn, xid = heap[0]
            anchor = self._buckets[self._bucket_index(xid)].get(xid)
            if anchor is not None and anchor.first_scn == scn:
                return scn
            heapq.heappop(heap)
        return 0

    def clear(self) -> None:
        """Drop all state (standby instance restart: the journal has no
        persistent footprint)."""
        for bucket in self._buckets:
            bucket.clear()
        self._floor_heap.clear()

    @property
    def anchor_count(self) -> int:
        return sum(len(b) for b in self._buckets)

    @property
    def record_count(self) -> int:
        return sum(
            anchor.n_records
            for bucket in self._buckets
            for anchor in bucket.values()
        )
