"""The Mining Component (paper, section III-B, Fig. 6).

"The DBIM-on-ADG Mining Component piggybacks on the recovery workers to
'sniff' each CV.  If the CV modifies an object that is specified to be
loaded in the IMCS on the Standby database, a tuple consisting of the
Object Identifier, Data Block Identifier (DBA) and the list of changed rows
in the data block is noted down in the IM-ADG Journal. [...]  In addition
to mining changes to the data in the IMCS, DBIM-on-ADG protocols need to
mine certain control information [...] viz. transaction state changes like
Transaction Begin, Prepare, Commit and Abort and the commitSCN associated
with each transaction."

The ``sniff`` method is installed as the recovery workers' sniffer hook: it
runs *before* a CV is applied and returns False on a journal/commit-table
latch miss, making the worker retry the same CV on its next step.

Restart protocol (section III-E): a mined commit record whose transaction
has no 'begin' in the journal is a pre-restart transaction.  If the commit
record's flag says it modified IMCS-enabled objects -- or specialized redo
generation is off and we must be pessimistic -- a *coarse* commit-table
node is created, whose flush invalidates every IMCU of the tenant.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro import obs
from repro.common.ids import TransactionId, WorkerId
from repro.common.scn import SCN
from repro.dbim_adg.commit_table import CommitTableNode, IMADGCommitTable
from repro.dbim_adg.ddl import DDLInformationTable
from repro.dbim_adg.journal import IMADGJournal, InvalidationRecord
from repro.imcs.store import InMemoryColumnStore
from repro.redo.records import (
    CVOp,
    ChangeVector,
    CommitPayload,
    DeletePayload,
    InsertPayload,
    TruncatePayload,
    UpdatePayload,
)


class MiningComponent:
    """Sniffs change vectors during redo apply."""

    data_records_mined = obs.view("_data_records_mined")
    control_records_mined = obs.view("_control_records_mined")
    ddl_markers_mined = obs.view("_ddl_markers_mined")
    latch_misses = obs.view("_latch_misses")
    coarse_nodes_created = obs.view("_coarse_nodes_created")
    #: Missing-begin commits skipped during instant-restart tail replay.
    tail_commits_skipped = obs.view("_tail_commits_skipped")

    def __init__(
        self,
        journal: IMADGJournal,
        commit_table: IMADGCommitTable,
        ddl_table: DDLInformationTable,
        imcs: InMemoryColumnStore,
    ) -> None:
        self.journal = journal
        self.commit_table = commit_table
        self.ddl_table = ddl_table
        self.imcs = imcs
        #: Optional hook fired when a transaction abort is mined (used by
        #: MIRA to garbage-collect the transaction's anchors on *other*
        #: apply instances, which never see the abort control CV).
        self.on_abort: Optional[Callable[[TransactionId, SCN], None]] = None
        #: Instant-restart tail replay (:mod:`repro.restart`): while set,
        #: a mined commit whose transaction has no 'begin' is *skipped*
        #: instead of triggering the III-E coarse invalidation.  The
        #: checkpoint's tail floor proves such a transaction's begin lies
        #: below the replay window, which in turn proves its invalidations
        #: were flushed into the checkpointed SMU masks before capture --
        #: the knowledge whose absence is the whole reason the coarse path
        #: exists.
        self.tail_mode = False
        # statistics
        self._obs = obs.current()
        self._data_records_mined = obs.counter("dbim.miner.data_records")
        self._control_records_mined = obs.counter(
            "dbim.miner.control_records"
        )
        self._ddl_markers_mined = obs.counter("dbim.miner.ddl_markers")
        self._latch_misses = obs.counter("dbim.miner.latch_misses")
        self._coarse_nodes_created = obs.counter("dbim.miner.coarse_nodes")
        self._tail_commits_skipped = obs.counter(
            "dbim.miner.tail_commits_skipped"
        )

    # ------------------------------------------------------------------
    def sniff(
        self, cv: ChangeVector, scn: SCN, worker_id: WorkerId, owner: object
    ) -> bool:
        """Mine one CV.  False = latch miss; the worker must retry it."""
        mined = self._sniff_cv(cv, scn, worker_id, owner)
        if mined:
            tracer = obs.tracer_of(self._obs)
            if tracer is not None:
                tracer.record_mined(scn)
        return mined

    def _sniff_cv(
        self, cv: ChangeVector, scn: SCN, worker_id: WorkerId, owner: object
    ) -> bool:
        op = cv.op
        if op is CVOp.HEARTBEAT or op is CVOp.UNDO:
            # Heartbeats carry no change.  UNDO (rollback) restores rows to
            # their committed state -- which is what the IMCU already holds,
            # so aborted changes never need invalidation; the journal's
            # buffered records are discarded when the abort is mined.
            return True
        if op is CVOp.DDL_MARKER:
            self.ddl_table.add(scn, cv.payload)
            self._ddl_markers_mined.inc()
            return True
        if cv.is_control:
            return self._sniff_control(cv, scn, owner)
        return self._sniff_data(cv, scn, worker_id, owner)

    # ------------------------------------------------------------------
    def _sniff_control(
        self, cv: ChangeVector, scn: SCN, owner: object
    ) -> bool:
        op = cv.op
        if op is CVOp.TXN_BEGIN:
            anchor = self.journal.get_or_create(cv.xid, cv.tenant, owner)
            if anchor is None:
                self._latch_misses.inc()
                return False
            anchor.has_begin = True
            anchor.note_scn(scn)
            self._control_records_mined.inc()
            return True
        if op is CVOp.TXN_PREPARE:
            anchor = self.journal.get_or_create(cv.xid, cv.tenant, owner)
            if anchor is None:
                self._latch_misses.inc()
                return False
            anchor.prepared = True
            anchor.note_scn(scn)
            self._control_records_mined.inc()
            return True
        if op is CVOp.TXN_ABORT:
            removed = self.journal.remove(cv.xid, owner)
            if removed is None:
                self._latch_misses.inc()
                return False
            self._control_records_mined.inc()
            if self.on_abort is not None:
                self.on_abort(cv.xid, scn)
            return True
        if op is CVOp.TXN_COMMIT:
            return self._sniff_commit(cv, owner)
        raise ValueError(f"unhandled control op {op}")

    def _sniff_commit(self, cv: ChangeVector, owner: object) -> bool:
        payload: CommitPayload = cv.payload
        acquired, anchor = self.journal.get(cv.xid, owner)
        if not acquired:
            self._latch_misses.inc()
            return False
        if anchor is not None and anchor.has_begin:
            node = CommitTableNode(
                xid=cv.xid,
                commit_scn=payload.commit_scn,
                anchor=anchor,
                tenant=cv.tenant,
            )
        else:
            # Missing 'transaction begin': mined state predates an instance
            # restart (paper, III-E).  The commit-record flag decides:
            #   False      -> transaction touched no IMCS object; skip.
            #   True/None  -> coarse invalidation of the tenant's IMCUs
            #                 (None = no specialized redo: be pessimistic).
            if payload.modifies_imcs is False:
                self._control_records_mined.inc()
                return True
            if self.tail_mode:
                # Instant-restart tail replay: a commit whose begin lies
                # below the tail floor belongs to a transaction whose
                # invalidations were flushed into the checkpointed masks
                # before capture (see repro.restart.replay) -- skipping is
                # exact, not pessimistic.
                self._tail_commits_skipped.inc()
                self._control_records_mined.inc()
                return True
            node = CommitTableNode(
                xid=cv.xid,
                commit_scn=payload.commit_scn,
                anchor=anchor,
                tenant=cv.tenant,
                coarse=True,
            )
            self._coarse_nodes_created.inc()
        if not self.commit_table.insert(node, owner):
            self._latch_misses.inc()
            if node.coarse:
                self._coarse_nodes_created.inc(-1)  # recreated on retry
            return False
        self._control_records_mined.inc()
        return True

    # ------------------------------------------------------------------
    def _sniff_data(
        self, cv: ChangeVector, scn: SCN, worker_id: WorkerId, owner: object
    ) -> bool:
        if not self.imcs.is_enabled(cv.object_id):
            return True  # not populated here: nothing to maintain
        slots = self._changed_slots(cv)
        anchor = self.journal.get_or_create(cv.xid, cv.tenant, owner)
        if anchor is None:
            self._latch_misses.inc()
            return False
        anchor.add(
            worker_id,
            InvalidationRecord(
                object_id=cv.object_id,
                dba=cv.dba,
                slots=slots,
                tenant=cv.tenant,
                scn=scn,
            ),
        )
        self._data_records_mined.inc()
        return True

    @staticmethod
    def _changed_slots(cv: ChangeVector) -> tuple[int, ...]:
        payload = cv.payload
        if isinstance(payload, (InsertPayload, UpdatePayload, DeletePayload)):
            return (payload.slot,)
        if isinstance(payload, TruncatePayload):
            return ()  # whole block
        return ()

    def clear(self) -> None:
        """Reset statistics (state lives in the journal/tables)."""
        self.data_records_mined = 0
        self.control_records_mined = 0
        self.ddl_markers_mined = 0
        self.latch_misses = 0
        self.coarse_nodes_created = 0
