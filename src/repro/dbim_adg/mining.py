"""The Mining Component (paper, section III-B, Fig. 6).

"The DBIM-on-ADG Mining Component piggybacks on the recovery workers to
'sniff' each CV.  If the CV modifies an object that is specified to be
loaded in the IMCS on the Standby database, a tuple consisting of the
Object Identifier, Data Block Identifier (DBA) and the list of changed rows
in the data block is noted down in the IM-ADG Journal. [...]  In addition
to mining changes to the data in the IMCS, DBIM-on-ADG protocols need to
mine certain control information [...] viz. transaction state changes like
Transaction Begin, Prepare, Commit and Abort and the commitSCN associated
with each transaction."

The ``sniff`` method is installed as the recovery workers' sniffer hook: it
runs *before* a CV is applied and returns False on a journal/commit-table
latch miss, making the worker retry the same CV on its next step.

Restart protocol (section III-E): a mined commit record whose transaction
has no 'begin' in the journal is a pre-restart transaction.  If the commit
record's flag says it modified IMCS-enabled objects -- or specialized redo
generation is off and we must be pessimistic -- a *coarse* commit-table
node is created, whose flush invalidates every IMCU of the tenant.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro import obs
from repro.common.ids import TransactionId, WorkerId
from repro.common.scn import SCN
from repro.dbim_adg.commit_table import CommitTableNode, IMADGCommitTable
from repro.dbim_adg.ddl import DDLInformationTable
from repro.dbim_adg.journal import IMADGJournal, InvalidationRecord
from repro.imcs.store import InMemoryColumnStore
from repro.redo.batch import (
    BULK_DATA_LOOKUP,
    OP_CODE,
    SPECIAL_LOOKUP,
    CVChunk,
    decode_xid,
)
from repro.redo.records import (
    CVOp,
    ChangeVector,
    CommitPayload,
    DeletePayload,
    InsertPayload,
    TruncatePayload,
    UpdatePayload,
)


class MiningComponent:
    """Sniffs change vectors during redo apply."""

    data_records_mined = obs.view("_data_records_mined")
    control_records_mined = obs.view("_control_records_mined")
    ddl_markers_mined = obs.view("_ddl_markers_mined")
    latch_misses = obs.view("_latch_misses")
    coarse_nodes_created = obs.view("_coarse_nodes_created")
    #: Missing-begin commits skipped during instant-restart tail replay.
    tail_commits_skipped = obs.view("_tail_commits_skipped")

    def __init__(
        self,
        journal: IMADGJournal,
        commit_table: IMADGCommitTable,
        ddl_table: DDLInformationTable,
        imcs: InMemoryColumnStore,
    ) -> None:
        self.journal = journal
        self.commit_table = commit_table
        self.ddl_table = ddl_table
        self.imcs = imcs
        #: Optional hook fired when a transaction abort is mined (used by
        #: MIRA to garbage-collect the transaction's anchors on *other*
        #: apply instances, which never see the abort control CV).
        self.on_abort: Optional[Callable[[TransactionId, SCN], None]] = None
        #: Instant-restart tail replay (:mod:`repro.restart`): while set,
        #: a mined commit whose transaction has no 'begin' is *skipped*
        #: instead of triggering the III-E coarse invalidation.  The
        #: checkpoint's tail floor proves such a transaction's begin lies
        #: below the replay window, which in turn proves its invalidations
        #: were flushed into the checkpointed SMU masks before capture --
        #: the knowledge whose absence is the whole reason the coarse path
        #: exists.
        self.tail_mode = False
        # statistics
        self._obs = obs.current()
        self._data_records_mined = obs.counter("dbim.miner.data_records")
        self._control_records_mined = obs.counter(
            "dbim.miner.control_records"
        )
        self._ddl_markers_mined = obs.counter("dbim.miner.ddl_markers")
        self._latch_misses = obs.counter("dbim.miner.latch_misses")
        self._coarse_nodes_created = obs.counter("dbim.miner.coarse_nodes")
        self._tail_commits_skipped = obs.counter(
            "dbim.miner.tail_commits_skipped"
        )
        #: CVs per bulk-mined chunk.
        self._batch_cvs = obs.histogram("dbim.mine.batch_cvs")

    # ------------------------------------------------------------------
    def sniff(
        self, cv: ChangeVector, scn: SCN, worker_id: WorkerId, owner: object
    ) -> bool:
        """Mine one CV.  False = latch miss; the worker must retry it."""
        mined = self._sniff_cv(cv, scn, worker_id, owner)
        if mined:
            tracer = obs.tracer_of(self._obs)
            if tracer is not None:
                tracer.record_mined(scn)
        return mined

    def _sniff_cv(
        self, cv: ChangeVector, scn: SCN, worker_id: WorkerId, owner: object
    ) -> bool:
        op = cv.op
        if op is CVOp.HEARTBEAT or op is CVOp.UNDO:
            # Heartbeats carry no change.  UNDO (rollback) restores rows to
            # their committed state -- which is what the IMCU already holds,
            # so aborted changes never need invalidation; the journal's
            # buffered records are discarded when the abort is mined.
            return True
        if op is CVOp.DDL_MARKER:
            self.ddl_table.add(scn, cv.payload)
            self._ddl_markers_mined.inc()
            return True
        if cv.is_control:
            return self._sniff_control(cv, scn, owner)
        return self._sniff_data(cv, scn, worker_id, owner)

    # ------------------------------------------------------------------
    def _sniff_control(
        self, cv: ChangeVector, scn: SCN, owner: object
    ) -> bool:
        op = cv.op
        if op is CVOp.TXN_BEGIN:
            anchor = self.journal.get_or_create(cv.xid, cv.tenant, owner)
            if anchor is None:
                self._latch_misses.inc()
                return False
            anchor.has_begin = True
            anchor.note_scn(scn)
            self._control_records_mined.inc()
            return True
        if op is CVOp.TXN_PREPARE:
            anchor = self.journal.get_or_create(cv.xid, cv.tenant, owner)
            if anchor is None:
                self._latch_misses.inc()
                return False
            anchor.prepared = True
            anchor.note_scn(scn)
            self._control_records_mined.inc()
            return True
        if op is CVOp.TXN_ABORT:
            removed = self.journal.remove(cv.xid, owner)
            if removed is None:
                self._latch_misses.inc()
                return False
            self._control_records_mined.inc()
            if self.on_abort is not None:
                self.on_abort(cv.xid, scn)
            return True
        if op is CVOp.TXN_COMMIT:
            return self._sniff_commit(cv, owner)
        raise ValueError(f"unhandled control op {op}")

    def _sniff_commit(self, cv: ChangeVector, owner: object) -> bool:
        payload: CommitPayload = cv.payload
        acquired, anchor = self.journal.get(cv.xid, owner)
        if not acquired:
            self._latch_misses.inc()
            return False
        if anchor is not None and anchor.has_begin:
            node = CommitTableNode(
                xid=cv.xid,
                commit_scn=payload.commit_scn,
                anchor=anchor,
                tenant=cv.tenant,
            )
        else:
            # Missing 'transaction begin': mined state predates an instance
            # restart (paper, III-E).  The commit-record flag decides:
            #   False      -> transaction touched no IMCS object; skip.
            #   True/None  -> coarse invalidation of the tenant's IMCUs
            #                 (None = no specialized redo: be pessimistic).
            if payload.modifies_imcs is False:
                self._control_records_mined.inc()
                return True
            if self.tail_mode:
                # Instant-restart tail replay: a commit whose begin lies
                # below the tail floor belongs to a transaction whose
                # invalidations were flushed into the checkpointed masks
                # before capture (see repro.restart.replay) -- skipping is
                # exact, not pessimistic.
                self._tail_commits_skipped.inc()
                self._control_records_mined.inc()
                return True
            node = CommitTableNode(
                xid=cv.xid,
                commit_scn=payload.commit_scn,
                anchor=anchor,
                tenant=cv.tenant,
                coarse=True,
            )
            self._coarse_nodes_created.inc()
        if not self.commit_table.insert(node, owner):
            self._latch_misses.inc()
            if node.coarse:
                self._coarse_nodes_created.inc(-1)  # recreated on retry
            return False
        self._control_records_mined.inc()
        return True

    # ------------------------------------------------------------------
    # Columnar chunk mining (installed as the workers' batch sniffer).
    # ------------------------------------------------------------------
    def sniff_chunk(
        self, chunk: CVChunk, worker_id: WorkerId, owner: object
    ) -> bool:
        """Mine a worker's whole chunk, bulk-grouping data CVs by xid.

        The chunk is walked as alternating *data gaps* (runs of
        non-control CVs, grouped by transaction with one stable sort and
        appended to journal anchors as columnar RecordChunks) and
        *special* positions (transaction state changes and DDL markers,
        processed one at a time, in order).  Commit-table inserts are
        deferred into one :meth:`IMADGCommitTable.insert_batch` at the
        end of the chunk -- safe because the flush chop is gated behind
        the chunk being fully *applied*, which requires it fully mined.
        Returns False on a latch miss; partial progress stays on the
        chunk (``mined_pos`` / ``mined_xids`` / ``pending_commits``) and
        the worker retries next step.
        """
        indices = chunk.indices
        n = len(indices)
        if not chunk.stats_noted:
            chunk.stats_noted = True
            self._batch_cvs.observe(n)
        batch = chunk.batch
        cvs = batch.cvs
        scns = batch.scns
        tracer = obs.tracer_of(self._obs)
        # One pass of vectorized classification for the whole call: the
        # special positions to walk in order, and the minable-data mask
        # (bulk data op AND IMCS-enabled object).  Nothing can change the
        # enabled set *within* a call, so hoisting the filter out of the
        # per-gap path is exact.
        chunk_ops = batch.ops[indices]
        special_positions = np.nonzero(SPECIAL_LOOKUP[chunk_ops])[0]
        data_mask = BULK_DATA_LOOKUP[chunk_ops]
        # TRUNCATE CVs are invalidated via their DDL marker, never
        # journaled: the system xid they carry has no commit, so an
        # anchor for it would leak (see _sniff_data).
        data_mask &= chunk_ops != OP_CODE[CVOp.TRUNCATE]
        if data_mask.any():
            enabled = self.imcs.enabled_object_ids
            if not enabled:
                data_mask[:] = False
            elif len(enabled) <= 8:
                # A handful of enabled objects: a few equality passes beat
                # np.isin's sort/unique machinery by an order of magnitude.
                object_ids = batch.object_ids[indices]
                enabled_mask = np.zeros(n, dtype=bool)
                for object_id in enabled:
                    enabled_mask |= object_ids == object_id
                data_mask &= enabled_mask
            else:
                data_mask &= np.isin(
                    batch.object_ids[indices],
                    np.fromiter(
                        enabled, dtype=np.int64, count=len(enabled)
                    ),
                    kind="sort",
                )
        pos = chunk.mined_pos
        while pos < n:
            k = int(np.searchsorted(special_positions, pos))
            gap_end = (
                int(special_positions[k])
                if k < special_positions.size
                else n
            )
            if gap_end > pos:
                if not self._mine_data_gap(
                    chunk, pos, gap_end, data_mask, worker_id, owner, tracer
                ):
                    return False
                pos = gap_end
                chunk.mined_pos = pos
                chunk.mined_xids = None
                continue
            i = int(indices[pos])
            cv = cvs[i]
            scn = int(scns[i])
            if not self._sniff_special(cv, scn, chunk, owner):
                chunk.mined_pos = pos
                return False
            pos += 1
            chunk.mined_pos = pos
            if tracer is not None:
                tracer.record_mined(scn)
        if chunk.pending_commits:
            leftover = self.commit_table.insert_batch(
                chunk.pending_commits, owner
            )
            if leftover:
                self._latch_misses.inc()
                chunk.pending_commits = leftover
                return False
            chunk.pending_commits = None
        return True

    def _mine_data_gap(
        self,
        chunk: CVChunk,
        lo: int,
        hi: int,
        data_mask: np.ndarray,
        worker_id: WorkerId,
        owner: object,
        tracer,
    ) -> bool:
        """Bulk-mine one run of non-control CVs: take the caller's
        precomputed minable-data mask, group by xid with one stable sort,
        and append each group to its journal anchor as a single columnar
        slice.  ``mined_xids`` carries per-group progress across
        latch-miss retries of the same gap."""
        batch = chunk.batch
        idx = chunk.indices[lo:hi]
        mask = data_mask[lo:hi]
        if mask.any():
            sel = np.nonzero(mask)[0]
            xids = batch.xids[idx[sel]]
            order = np.argsort(xids, kind="stable")
            sorted_xids = xids[order]
            starts = np.nonzero(
                np.concatenate(([True], sorted_xids[1:] != sorted_xids[:-1]))
            )[0]
            ends = np.append(starts[1:], sel.size)
            mined = chunk.mined_xids
            if mined is None:
                mined = chunk.mined_xids = set()
            for g in range(starts.size):
                code = int(sorted_xids[starts[g]])
                if code in mined:
                    continue
                # back to chunk order: SCN-ascending within the group
                grp = idx[sel[np.sort(order[starts[g] : ends[g]])]]
                tenant = int(batch.tenants[grp[0]])
                anchor = self.journal.get_or_create(
                    decode_xid(code), tenant, owner
                )
                if anchor is None:
                    self._latch_misses.inc()
                    return False
                anchor.add_batch(
                    worker_id,
                    batch.object_ids[grp],
                    batch.dbas[grp],
                    batch.slots[grp],
                    batch.scns[grp],
                    tenant,
                )
                self._data_records_mined.inc(int(grp.size))
                mined.add(code)
        if tracer is not None:
            for s in batch.scns[idx]:
                tracer.record_mined(int(s))
        return True

    def _sniff_special(
        self, cv: ChangeVector, scn: SCN, chunk: CVChunk, owner: object
    ) -> bool:
        """Mine one in-order special CV during a chunk walk; commits
        defer their commit-table insert to the chunk's batch insert."""
        if cv.op is CVOp.DDL_MARKER:
            self.ddl_table.add(scn, cv.payload)
            self._ddl_markers_mined.inc()
            return True
        if cv.op is CVOp.TXN_COMMIT:
            return self._sniff_commit_deferred(cv, chunk, owner)
        return self._sniff_control(cv, scn, owner)

    def _sniff_commit_deferred(
        self, cv: ChangeVector, chunk: CVChunk, owner: object
    ) -> bool:
        """Like :meth:`_sniff_commit`, but the built node lands on the
        chunk's ``pending_commits`` instead of the commit table."""
        payload: CommitPayload = cv.payload
        acquired, anchor = self.journal.get(cv.xid, owner)
        if not acquired:
            self._latch_misses.inc()
            return False
        if anchor is not None and anchor.has_begin:
            node = CommitTableNode(
                xid=cv.xid,
                commit_scn=payload.commit_scn,
                anchor=anchor,
                tenant=cv.tenant,
            )
        else:
            if payload.modifies_imcs is False:
                self._control_records_mined.inc()
                return True
            if self.tail_mode:
                self._tail_commits_skipped.inc()
                self._control_records_mined.inc()
                return True
            node = CommitTableNode(
                xid=cv.xid,
                commit_scn=payload.commit_scn,
                anchor=anchor,
                tenant=cv.tenant,
                coarse=True,
            )
            self._coarse_nodes_created.inc()
        if chunk.pending_commits is None:
            chunk.pending_commits = []
        chunk.pending_commits.append(node)
        self._control_records_mined.inc()
        return True

    # ------------------------------------------------------------------
    def _sniff_data(
        self, cv: ChangeVector, scn: SCN, worker_id: WorkerId, owner: object
    ) -> bool:
        if not self.imcs.is_enabled(cv.object_id):
            return True  # not populated here: nothing to maintain
        if cv.op is CVOp.TRUNCATE:
            # The IMCU drop rides the TRUNCATE's DDL marker (processed at
            # QuerySCN advancement); journaling the block-wipe CV here
            # would anchor it under the system xid -- which never
            # commits, so the anchor would pin the journal floor forever.
            return True
        slots = self._changed_slots(cv)
        anchor = self.journal.get_or_create(cv.xid, cv.tenant, owner)
        if anchor is None:
            self._latch_misses.inc()
            return False
        anchor.add(
            worker_id,
            InvalidationRecord(
                object_id=cv.object_id,
                dba=cv.dba,
                slots=slots,
                tenant=cv.tenant,
                scn=scn,
            ),
        )
        self._data_records_mined.inc()
        return True

    @staticmethod
    def _changed_slots(cv: ChangeVector) -> tuple[int, ...]:
        payload = cv.payload
        if isinstance(payload, (InsertPayload, UpdatePayload, DeletePayload)):
            return (payload.slot,)
        if isinstance(payload, TruncatePayload):
            return ()  # whole block
        return ()

    def clear(self) -> None:
        """Reset statistics (state lives in the journal/tables)."""
        self.data_records_mined = 0
        self.control_records_mined = 0
        self.ddl_markers_mined = 0
        self.latch_misses = 0
        self.coarse_nodes_created = 0
