"""The DDL Information Table (paper, section III-G).

"DBIM-on-ADG infrastructure therefore introduces redo markers in the redo
logs in response to DDL operations. [...] Redo markers are mined by the
DBIM-on-ADG Mining Component and the information therein buffered in a
separate DDL Information Table, similar to the IM-ADG Commit Table.  At the
time of advancing the QuerySCN, IMCUs for the particular object are
dropped, if the definition of the object has changed."
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.common.scn import SCN
from repro.redo.records import DDLMarkerPayload


@dataclass(frozen=True, slots=True)
class DDLEntry:
    scn: SCN
    payload: DDLMarkerPayload


class DDLInformationTable:
    """SCN-sorted buffer of mined redo markers."""

    def __init__(self) -> None:
        self._entries: list[DDLEntry] = []

    def add(self, scn: SCN, payload: DDLMarkerPayload) -> None:
        position = bisect.bisect_right(
            self._entries, scn, key=lambda e: e.scn
        )
        self._entries.insert(position, DDLEntry(scn, payload))

    def take_through(self, scn: SCN) -> list[DDLEntry]:
        """Remove and return every entry with SCN <= ``scn``."""
        cut = bisect.bisect_right(self._entries, scn, key=lambda e: e.scn)
        taken = self._entries[:cut]
        del self._entries[:cut]
        return taken

    def clear(self) -> None:
        self._entries = []

    def __len__(self) -> int:
        return len(self._entries)
