"""DBIM-on-ADG: the paper's core contribution.

Keeps the standby's In-Memory Column Store transactionally consistent at
every published QuerySCN, using only the redo stream:

* the **Mining Component** (``mining.py``) piggybacks on recovery workers
  and sniffs every change vector, producing invalidation records for
  IMCS-enabled objects plus transaction control information;
* the **IM-ADG Journal** (``journal.py``) buffers invalidation records per
  transaction in a hash table with bucket latches and per-worker buffer
  areas (paper, III-C, Fig. 7);
* the **IM-ADG Commit Table** (``commit_table.py``) keeps commitSCN-sorted,
  partitioned lists of committed transactions with one-step access to their
  journal anchors (paper, III-D-1, Fig. 8);
* the **Invalidation Flush Component** (``flush.py``) chops the commit
  table into a worklink at QuerySCN advancement, organises each
  transaction's records into invalidation groups and flushes them to the
  SMUs -- cooperatively, using the recovery workers (paper, III-D-2);
* the **DDL Information Table** (``ddl.py``) buffers redo markers so IMCUs
  are dropped when the object definition changes (paper, III-G).

The restart/coarse-invalidation protocol of section III-E is implemented
across ``mining.py`` (missing-begin detection, commit-record flag) and
``flush.py`` (tenant-wide coarse invalidation).
"""

from repro.dbim_adg.journal import AnchorNode, IMADGJournal, InvalidationRecord
from repro.dbim_adg.commit_table import CommitTableNode, IMADGCommitTable
from repro.dbim_adg.ddl import DDLEntry, DDLInformationTable
from repro.dbim_adg.mining import MiningComponent
from repro.dbim_adg.flush import (
    InvalidationFlushComponent,
    InvalidationGroup,
    LocalInvalidationRouter,
    Worklink,
)

__all__ = [
    "AnchorNode",
    "IMADGJournal",
    "InvalidationRecord",
    "CommitTableNode",
    "IMADGCommitTable",
    "DDLEntry",
    "DDLInformationTable",
    "MiningComponent",
    "InvalidationFlushComponent",
    "InvalidationGroup",
    "LocalInvalidationRouter",
    "Worklink",
]
