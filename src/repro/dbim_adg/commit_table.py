"""The IM-ADG Commit Table (paper, section III-D-1, Fig. 8).

"DBIM-on-ADG Mining Component maintains an in-memory, sorted linked list
of transaction identifiers and their commitSCN in the IM-ADG Commit Table.
[...] The Commit Table node contains a direct reference to the anchor node
in the IM-ADG Journal which hosts the transaction's invalidation records.
[...] To address the bottleneck of insertion into a single, sorted linked
list by the Mining Component, the IM-ADG Commit Table can be partitioned to
create multiple sorted linked lists."

At QuerySCN advancement the coordinator *chops* each partition at the
target commitSCN; the chopped prefixes form the worklink.
"""

from __future__ import annotations

import bisect
import heapq
from dataclasses import dataclass
from typing import Optional

from repro import obs
from repro.common.ids import TenantId, TransactionId
from repro.common.latch import BucketLatchSet
from repro.common.scn import SCN
from repro.dbim_adg.journal import AnchorNode


@dataclass(slots=True)
class CommitTableNode:
    """One committed (or prepared) transaction awaiting flush."""

    xid: TransactionId
    commit_scn: SCN
    #: Direct, one-step reference into the IM-ADG Journal.
    anchor: Optional[AnchorNode]
    tenant: TenantId
    #: True when the section III-E restart protocol demands coarse
    #: invalidation: the commit record's flag says (or pessimism assumes)
    #: the transaction modified IMCS objects, but its begin was never mined.
    coarse: bool = False


class IMADGCommitTable:
    """CommitSCN-sorted, partitioned lists of commit-table nodes."""

    inserts = obs.view("_inserts")

    def __init__(self, n_partitions: int = 4) -> None:
        if n_partitions < 1:
            raise ValueError("commit table needs at least one partition")
        self._partitions: list[list[CommitTableNode]] = [
            [] for __ in range(n_partitions)
        ]
        self.latches = BucketLatchSet(n_partitions, name="im-adg-commit")
        self._inserts = obs.counter("dbim.commit_table.inserts")

    @property
    def n_partitions(self) -> int:
        return len(self._partitions)

    def _partition_index(self, xid: TransactionId) -> int:
        return hash(xid) % len(self._partitions)

    def insert(self, node: CommitTableNode, owner: object) -> bool:
        """Insert sorted by commitSCN.  False on a partition-latch miss."""
        index = self._partition_index(node.xid)
        latch = self.latches.latch_for(index)
        if not latch.try_acquire(owner):
            return False
        try:
            partition = self._partitions[index]
            position = bisect.bisect_right(
                partition, node.commit_scn, key=lambda n: n.commit_scn
            )
            partition.insert(position, node)
            self._inserts.inc()
            return True
        finally:
            latch.release(owner)

    def insert_batch(
        self, nodes: list[CommitTableNode], owner: object
    ) -> list[CommitTableNode]:
        """Insert many nodes: one latch acquisition and one sorted merge
        per touched partition, instead of N bisect-inserts each taking
        the latch.  Returns the nodes *not* inserted (their partition's
        latch was missed); the caller retries just those.
        """
        by_partition: dict[int, list[CommitTableNode]] = {}
        for node in nodes:
            by_partition.setdefault(
                self._partition_index(node.xid), []
            ).append(node)
        leftover: list[CommitTableNode] = []
        inserted = 0
        for index, group in by_partition.items():
            latch = self.latches.latch_for(index)
            if not latch.try_acquire(owner):
                leftover.extend(group)
                continue
            try:
                group.sort(key=lambda n: n.commit_scn)  # stable
                partition = self._partitions[index]
                if (
                    not partition
                    or partition[-1].commit_scn <= group[0].commit_scn
                ):
                    # the common case: new commits land past the tail
                    partition.extend(group)
                else:
                    # ties resolve existing-before-new, like bisect_right
                    partition[:] = heapq.merge(
                        partition, group, key=lambda n: n.commit_scn
                    )
                inserted += len(group)
            finally:
                latch.release(owner)
        if inserted:
            self._inserts.inc(inserted)
        return leftover

    def chop(self, up_to_scn: SCN) -> list[CommitTableNode]:
        """Cut every partition at ``up_to_scn``; returns the removed nodes
        (commitSCN order across partitions is restored by an O(n log p)
        merge of the already-sorted per-partition runs).

        Runs on the recovery coordinator during QuerySCN advancement; the
        coordinator owns all partition latches conceptually, and chopping
        is a single atomic step in the simulation.
        """
        runs: list[list[CommitTableNode]] = []
        for partition in self._partitions:
            cut = bisect.bisect_right(
                partition, up_to_scn, key=lambda n: n.commit_scn
            )
            if cut:
                runs.append(partition[:cut])
                del partition[:cut]
        if not runs:
            return []
        if len(runs) == 1:
            return runs[0]
        # heapq.merge breaks commitSCN ties toward the earlier run, which
        # is exactly the partition-index order the old stable sort gave
        return list(heapq.merge(*runs, key=lambda n: n.commit_scn))

    def clear(self) -> None:
        for partition in self._partitions:
            partition.clear()

    def __len__(self) -> int:
        return sum(len(p) for p in self._partitions)

    @property
    def min_pending_scn(self) -> Optional[SCN]:
        heads = [p[0].commit_scn for p in self._partitions if p]
        return min(heads) if heads else None
