"""The IM-ADG Commit Table (paper, section III-D-1, Fig. 8).

"DBIM-on-ADG Mining Component maintains an in-memory, sorted linked list
of transaction identifiers and their commitSCN in the IM-ADG Commit Table.
[...] The Commit Table node contains a direct reference to the anchor node
in the IM-ADG Journal which hosts the transaction's invalidation records.
[...] To address the bottleneck of insertion into a single, sorted linked
list by the Mining Component, the IM-ADG Commit Table can be partitioned to
create multiple sorted linked lists."

At QuerySCN advancement the coordinator *chops* each partition at the
target commitSCN; the chopped prefixes form the worklink.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Optional

from repro import obs
from repro.common.ids import TenantId, TransactionId
from repro.common.latch import BucketLatchSet
from repro.common.scn import SCN
from repro.dbim_adg.journal import AnchorNode


@dataclass(slots=True)
class CommitTableNode:
    """One committed (or prepared) transaction awaiting flush."""

    xid: TransactionId
    commit_scn: SCN
    #: Direct, one-step reference into the IM-ADG Journal.
    anchor: Optional[AnchorNode]
    tenant: TenantId
    #: True when the section III-E restart protocol demands coarse
    #: invalidation: the commit record's flag says (or pessimism assumes)
    #: the transaction modified IMCS objects, but its begin was never mined.
    coarse: bool = False


class IMADGCommitTable:
    """CommitSCN-sorted, partitioned lists of commit-table nodes."""

    inserts = obs.view("_inserts")

    def __init__(self, n_partitions: int = 4) -> None:
        if n_partitions < 1:
            raise ValueError("commit table needs at least one partition")
        self._partitions: list[list[CommitTableNode]] = [
            [] for __ in range(n_partitions)
        ]
        self.latches = BucketLatchSet(n_partitions, name="im-adg-commit")
        self._inserts = obs.counter("dbim.commit_table.inserts")

    @property
    def n_partitions(self) -> int:
        return len(self._partitions)

    def _partition_index(self, xid: TransactionId) -> int:
        return hash(xid) % len(self._partitions)

    def insert(self, node: CommitTableNode, owner: object) -> bool:
        """Insert sorted by commitSCN.  False on a partition-latch miss."""
        index = self._partition_index(node.xid)
        latch = self.latches.latch_for(index)
        if not latch.try_acquire(owner):
            return False
        try:
            partition = self._partitions[index]
            position = bisect.bisect_right(
                partition, node.commit_scn, key=lambda n: n.commit_scn
            )
            partition.insert(position, node)
            self._inserts.inc()
            return True
        finally:
            latch.release(owner)

    def chop(self, up_to_scn: SCN) -> list[CommitTableNode]:
        """Cut every partition at ``up_to_scn``; returns the removed nodes
        (commitSCN order across partitions is restored by a merge).

        Runs on the recovery coordinator during QuerySCN advancement; the
        coordinator owns all partition latches conceptually, and chopping
        is a single atomic step in the simulation.
        """
        chopped: list[CommitTableNode] = []
        for index, partition in enumerate(self._partitions):
            cut = bisect.bisect_right(
                partition, up_to_scn, key=lambda n: n.commit_scn
            )
            if cut:
                chopped.extend(partition[:cut])
                del partition[:cut]
        chopped.sort(key=lambda n: n.commit_scn)
        return chopped

    def clear(self) -> None:
        for partition in self._partitions:
            partition.clear()

    def __len__(self) -> int:
        return sum(len(p) for p in self._partitions)

    @property
    def min_pending_scn(self) -> Optional[SCN]:
        heads = [p[0].commit_scn for p in self._partitions if p]
        return min(heads) if heads else None
