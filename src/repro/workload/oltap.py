"""The synthetic OLTAP workload.

Paper, section IV-A: "The setup includes a synthetic OLTAP workload that
simulates an insert/update workload interspersed with queries.  The test
consists of a wide table with 6M rows, and 101 columns (1 identity column,
50 number columns and 50 varchar2 columns) with an index on the identity
column. [...] The test was run for 1 hour with a target throughput of 4000
ops/sec.  The percentage of DMLs and analytic queries in the workload was
tunable."

Scaled down: the defaults use 6,000 rows (config raises it), simulated
seconds instead of wall hours, and the same tunable mix.  The drivers are
scheduler actors:

* :class:`DMLDriver` runs the update/insert/index-fetch mix on the primary
  at the target rate (pacing via its actor timeline; CPU charged per-op to
  the primary node);
* :class:`QueryDriver` runs Table 1's Q1/Q2 full scans against whichever
  database it is pointed at and records response times;
* :class:`MetricsSampler` snapshots log SCNs, QuerySCN and per-node CPU
  over time (Fig. 11 and the CPU-transfer numbers).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.common.ids import InstanceId
from repro.db.deployment import Deployment, InMemoryService
from repro.db.schema_def import ColumnDef, PartitionScheme, TableDef
from repro.imcs.scan import Predicate
from repro.metrics.stats import LatencySeries, TimeSeries
from repro.rowstore.table import RowLockConflictError
from repro.sim.scheduler import Actor, Scheduler

# Simulated CPU seconds per DML-path operation on the primary.  These model
# the row-store code path (index maintenance, buffer access, redo
# generation); the redo transport and apply sides are charged by their own
# actors.
UPDATE_CPU_COST = 25e-6
INSERT_CPU_COST = 30e-6
FETCH_CPU_COST = 8e-6


@dataclass(slots=True)
class OLTAPConfig:
    """Tunable workload shape (paper defaults in comments)."""

    table_name: str = "C101_6P1M_HASH"
    n_rows: int = 6_000           # paper: 6M
    n_number_columns: int = 50
    n_varchar_columns: int = 50
    rows_per_block: int = 50
    target_ops_per_sec: float = 4000.0
    # operation mix (fractions of total ops); the remainder is index fetch
    pct_update: float = 0.70      # update-only workload: 70%
    pct_insert: float = 0.0
    pct_scan: float = 0.01        # 1% ad-hoc full scans
    #: statements per transaction, sampled uniformly from this range
    #: ("short, medium and long-running transaction mix", section IV-C).
    txn_statements: tuple[int, int] = (1, 4)
    duration: float = 5.0         # simulated seconds (paper: 1 hour)
    seed: int = 7
    #: distinct values per varchar column (drives dictionary cardinality)
    varchar_cardinality: int = 50

    def validate(self) -> None:
        total = self.pct_update + self.pct_insert + self.pct_scan
        if total > 1.0 + 1e-9:
            raise ValueError(f"operation mix sums to {total} > 1")


def wide_table_def(config: OLTAPConfig) -> TableDef:
    """The 101-column wide table of the paper's evaluation."""
    columns = [ColumnDef.number("id", nullable=False)]
    columns += [
        ColumnDef.number(f"n{i}") for i in range(1, config.n_number_columns + 1)
    ]
    columns += [
        ColumnDef.varchar(f"c{i}")
        for i in range(1, config.n_varchar_columns + 1)
    ]
    return TableDef(
        config.table_name,
        tuple(columns),
        rows_per_block=config.rows_per_block,
        scheme=PartitionScheme.single(),
        indexes=("id",),
    )


def make_row(config: OLTAPConfig, row_id: int, rng: random.Random) -> tuple:
    numbers = [
        float(rng.randrange(0, 10_000))
        for __ in range(config.n_number_columns)
    ]
    strings = [
        f"s{rng.randrange(config.varchar_cardinality):05d}"
        for __ in range(config.n_varchar_columns)
    ]
    return (row_id, *numbers, *strings)


# ----------------------------------------------------------------------
class DMLDriver(Actor):
    """Issues the DML/fetch mix against the primary at the target rate."""

    def __init__(
        self,
        deployment: Deployment,
        config: OLTAPConfig,
        next_id_start: int,
        ops_per_step: int = 8,
        instance_id: InstanceId = 1,
    ) -> None:
        self.deployment = deployment
        self.config = config
        self.rng = random.Random(config.seed + instance_id)
        self.instance_id = instance_id
        self.ops_per_step = ops_per_step
        self.name = f"dml-driver-{instance_id}"
        self.node = None  # CPU charged manually per op
        self._next_id = next_id_start
        self._txn = None
        self._txn_remaining = 0
        self.ops_issued = 0
        self.updates = 0
        self.inserts = 0
        self.fetches = 0
        self.conflicts = 0

    # -- operation implementations ------------------------------------
    def _ensure_txn(self):
        primary = self.deployment.primary
        if self._txn is None or not self._txn.is_active:
            self._txn = primary.begin(instance_id=self.instance_id)
            lo, hi = self.config.txn_statements
            self._txn_remaining = self.rng.randint(lo, hi)
        return self._txn

    def _finish_statement(self) -> None:
        self._txn_remaining -= 1
        if self._txn_remaining <= 0 and self._txn is not None:
            self.deployment.primary.commit(self._txn)
            self._txn = None

    def _random_rowid(self):
        table = self.deployment.primary.catalog.table(self.config.table_name)
        key = self.rng.randrange(0, self._next_id)
        return table.indexes["id"].search(key)

    def _do_update(self) -> float:
        txn = self._ensure_txn()
        rowid = self._random_rowid()
        if rowid is None:
            return FETCH_CPU_COST
        config = self.config
        if self.rng.random() < 0.5:
            column = f"n{self.rng.randrange(1, config.n_number_columns + 1)}"
            value: object = float(self.rng.randrange(0, 10_000))
        else:
            column = f"c{self.rng.randrange(1, config.n_varchar_columns + 1)}"
            value = f"s{self.rng.randrange(config.varchar_cardinality):05d}"
        try:
            self.deployment.primary.update(
                txn, config.table_name, rowid, {column: value}
            )
            self.updates += 1
        except RowLockConflictError:
            self.conflicts += 1
        self._finish_statement()
        return UPDATE_CPU_COST

    def _do_insert(self) -> float:
        txn = self._ensure_txn()
        row = make_row(self.config, self._next_id, self.rng)
        self._next_id += 1
        self.deployment.primary.insert(txn, self.config.table_name, row)
        self.inserts += 1
        self._finish_statement()
        return INSERT_CPU_COST

    def _do_fetch(self) -> float:
        key = self.rng.randrange(0, self._next_id)
        self.deployment.primary.index_fetch(self.config.table_name, "id", key)
        self.fetches += 1
        return FETCH_CPU_COST

    # -- actor ----------------------------------------------------------
    def step(self, sched: Scheduler) -> Optional[float]:
        config = self.config
        node = self.deployment.primary.instance(self.instance_id).node
        # DML share of the total ops rate driven by this actor
        dml_fraction = 1.0 - config.pct_scan
        cpu = 0.0
        for __ in range(self.ops_per_step):
            draw = self.rng.random() * dml_fraction
            if draw < config.pct_update:
                cpu += self._do_update()
            elif draw < config.pct_update + config.pct_insert:
                cpu += self._do_insert()
            else:
                cpu += self._do_fetch()
            self.ops_issued += 1
        node.charge(cpu)
        # pacing: this step accounted for ops_per_step of the DML budget
        dml_rate = config.target_ops_per_sec * dml_fraction
        return self.ops_per_step / dml_rate


class QueryDriver(Actor):
    """Issues Table 1's Q1/Q2 full scans and records response times.

    ``target`` is either the primary or the standby database (anything
    with a ``query`` method and a CPU node attribute resolvable through
    ``node_of``).

    With a ``query_service`` the driver goes through the standby query
    layer instead: it *submits* each scan (morsel-parallel, result-cache
    accelerated) and polls the handle across steps -- response time is
    then simulated submit-to-complete wall time, and cache hits are
    counted in ``cache_hits``.
    """

    def __init__(
        self,
        deployment: Deployment,
        config: OLTAPConfig,
        target: str = "standby",
        scans_per_sec: Optional[float] = None,
        name: str = "query-driver",
        query_service=None,
    ) -> None:
        self.deployment = deployment
        self.config = config
        self.target = target
        self.scans_per_sec = (
            scans_per_sec
            if scans_per_sec is not None
            else config.target_ops_per_sec * config.pct_scan
        )
        self.rng = random.Random(config.seed + 1000)
        self.name = name
        self.node = None  # charged manually to the target's node
        self.q1 = LatencySeries("Q1")
        self.q2 = LatencySeries("Q2")
        self.query_service = query_service
        self.cache_hits = 0
        self._pending = None  # (handle, series) while a scan is in flight

    def _database(self):
        return (
            self.deployment.standby
            if self.target == "standby"
            else self.deployment.primary
        )

    def _target_node(self):
        if self.target == "standby":
            return self.deployment.standby.node
        return self.deployment.primary.instances[0].node

    def run_one_query(self) -> float:
        """Run one ad-hoc scan; returns its simulated response time."""
        database = self._database()
        if self.rng.random() < 0.5:
            # Q1: numeric filter that may have been updated
            value = float(self.rng.randrange(0, 10_000))
            result = database.query(
                self.config.table_name, [Predicate.eq("n1", value)]
            )
            series = self.q1
        else:
            # Q2: varchar filter that may have been updated
            value = f"s{self.rng.randrange(self.config.varchar_cardinality):05d}"
            result = database.query(
                self.config.table_name, [Predicate.eq("c1", value)]
            )
            series = self.q2
        latency = result.stats.cost_seconds
        series.record(latency)
        return latency

    def _next_query(self) -> tuple[list[Predicate], LatencySeries]:
        if self.rng.random() < 0.5:
            value = float(self.rng.randrange(0, 10_000))
            return [Predicate.eq("n1", value)], self.q1
        value = f"s{self.rng.randrange(self.config.varchar_cardinality):05d}"
        return [Predicate.eq("c1", value)], self.q2

    def step(self, sched: Scheduler) -> Optional[float]:
        if self.scans_per_sec <= 0:
            return None
        if self.query_service is None:
            latency = self.run_one_query()
            self._target_node().charge(latency)
            # pacing: one scan per 1/rate seconds (response time included
            # -- the paper's drivers block on their queries)
            return max(latency, 1.0 / self.scans_per_sec)
        # service path: submit once, poll until the pool finishes
        if self._pending is not None:
            handle, series = self._pending
            if not handle.done:
                return 1e-4  # poll again shortly
            self._pending = None
            if handle.cached:
                self.cache_hits += 1
                latency = handle.result.stats.cost_seconds
            else:
                latency = sched.now - handle.submit_time
            series.record(latency)
            return max(0.0, 1.0 / self.scans_per_sec - latency) or 1e-5
        predicates, series = self._next_query()
        handle = self.query_service.submit(
            self.config.table_name, predicates
        )
        self._pending = (handle, series)
        return 1e-5


@dataclass(slots=True)
class MetricsSampler(Actor):  # type: ignore[misc]
    """Samples log progress, QuerySCN and CPU over time."""

    deployment: Deployment
    interval: float = 0.05
    name: str = "metrics-sampler"
    node: Optional[object] = None
    speed: float = 1.0
    idle_backoff: float = 0.001
    primary_log_series: dict[InstanceId, TimeSeries] = field(default_factory=dict)
    standby_applied: TimeSeries = field(default_factory=lambda: TimeSeries("std_applied"))
    query_scn: TimeSeries = field(default_factory=lambda: TimeSeries("query_scn"))
    cpu_busy: dict[str, TimeSeries] = field(default_factory=dict)

    def step(self, sched: Scheduler) -> Optional[float]:
        deployment = self.deployment
        now = sched.now
        for instance in deployment.primary.instances:
            series = self.primary_log_series.setdefault(
                instance.instance_id,
                TimeSeries(f"pri_log{instance.instance_id}"),
            )
            series.record(now, instance.redo_log.last_scn)
        self.standby_applied.record(now, deployment.standby.applied_through_scn)
        self.query_scn.record(now, deployment.standby.query_scn.value)
        nodes = [i.node for i in deployment.primary.instances]
        nodes.append(deployment.standby.node)
        for node in nodes:
            series = self.cpu_busy.setdefault(node.name, TimeSeries(node.name))
            series.record(now, node.busy_seconds)
        return self.interval


# ----------------------------------------------------------------------
class OLTAPWorkload:
    """Builds the wide table, loads it, and runs the configured mix."""

    def __init__(self, deployment: Deployment, config: OLTAPConfig) -> None:
        config.validate()
        self.deployment = deployment
        self.config = config
        self.rng = random.Random(config.seed)
        self.dml_drivers: list[DMLDriver] = []
        self.query_driver: Optional[QueryDriver] = None
        self.sampler: Optional[MetricsSampler] = None

    # ------------------------------------------------------------------
    def setup(
        self,
        service: Optional[InMemoryService] = InMemoryService.BOTH,
        batch_rows: int = 500,
    ) -> None:
        """Create + bulk-load the wide table; optionally enable in-memory
        (None = row store only, the paper's 'without DBIM' baseline)."""
        config = self.config
        self.deployment.create_table(wide_table_def(config))
        primary = self.deployment.primary
        loaded = 0
        while loaded < config.n_rows:
            txn = primary.begin()
            for __ in range(min(batch_rows, config.n_rows - loaded)):
                primary.insert(
                    txn, config.table_name,
                    make_row(config, loaded, self.rng),
                )
                loaded += 1
            primary.commit(txn)
        if service is not None:
            self.deployment.enable_inmemory(config.table_name, service=service)
        self.deployment.catch_up()

    # ------------------------------------------------------------------
    def start(
        self,
        scan_target: str = "standby",
        sample_metrics: bool = True,
        dml_instances: int = 1,
    ) -> None:
        """Attach the drivers to the deployment's scheduler."""
        config = self.config
        for instance_id in range(1, dml_instances + 1):
            driver = DMLDriver(
                self.deployment, config,
                next_id_start=config.n_rows,
                instance_id=instance_id,
            )
            self.dml_drivers.append(driver)
            self.deployment.sched.add_actor(driver)
        if config.pct_scan > 0:
            # scans to the standby go through the query service when the
            # deployment started one (morsel parallelism + result cache)
            service = (
                self.deployment.query_service
                if scan_target == "standby" else None
            )
            self.query_driver = QueryDriver(
                self.deployment, config, target=scan_target,
                query_service=service,
            )
            self.deployment.sched.add_actor(self.query_driver)
        if sample_metrics:
            self.sampler = MetricsSampler(self.deployment)
            self.deployment.sched.add_actor(self.sampler)

    def run(self) -> None:
        self.deployment.run(self.config.duration)

    @property
    def dml_driver(self) -> Optional[DMLDriver]:
        return self.dml_drivers[0] if self.dml_drivers else None

    def stop(self) -> None:
        actors = list(self.dml_drivers) + [self.query_driver, self.sampler]
        for driver in actors:
            if driver is not None:
                self.deployment.sched.remove_actor(driver)
        for driver in self.dml_drivers:
            if driver._txn is not None and driver._txn.is_active:
                self.deployment.primary.commit(driver._txn)
            driver._txn = None
