"""The synthetic OLTAP workload kit (paper, section IV).

Recreates the paper's evaluation setup at laptop scale: a wide table named
``C101_6P1M_HASH`` with 101 columns (1 identity + 50 NUMBER + 50
VARCHAR2), an index on the identity column, and a driver issuing a tunable
mix of updates, inserts, index fetches and full-table-scan queries at a
target ops/s.
"""

from repro.workload.oltap import (
    OLTAPConfig,
    OLTAPWorkload,
    DMLDriver,
    QueryDriver,
    MetricsSampler,
    wide_table_def,
)

__all__ = [
    "OLTAPConfig",
    "OLTAPWorkload",
    "DMLDriver",
    "QueryDriver",
    "MetricsSampler",
    "wide_table_def",
]
