"""Morsel-parallel scan execution.

A scan is planned into :class:`~repro.imcs.scan.ScanMorsel`\\ s (one per
usable IMCU plus chunks of row-format blocks) and submitted to a
:class:`QueryWorkerPool`.  Each :class:`QueryWorker` is a scheduler actor:
it dequeues one morsel per step, runs it, and charges the morsel's
simulated scan cost as its step cost -- so with N workers the simulated
elapsed time of a query approaches 1/N of the serial scan, which is
exactly what ``bench_query_service`` measures.

Partials are merged **in plan order** (:func:`merge_partials`), so a
morsel-parallel result is bit-identical to the serial
``ScanEngine.scan`` at the same snapshot, regardless of which worker
finished first.
"""

from __future__ import annotations

import time

from collections import deque
from typing import Callable, Optional

from repro import obs
from repro.chaos import sites
from repro.imcs.scan import ScanMorsel, ScanResult, merge_partials
from repro.sim.cpu import CpuNode
from repro.sim.scheduler import Actor, Scheduler

#: Floor cost of dispatching one morsel (queue pop + merge bookkeeping).
MORSEL_DISPATCH_COST = 1e-6


class PendingQuery:
    """A submitted scan: fills with partials until every morsel ran."""

    __slots__ = (
        "morsels", "partials", "submit_time", "complete_time",
        "result", "on_complete", "_remaining",
    )

    def __init__(self, morsels: list[ScanMorsel], submit_time: float) -> None:
        self.morsels = morsels
        self.partials: list[Optional[ScanResult]] = [None] * len(morsels)
        self.submit_time = submit_time
        self.complete_time: Optional[float] = None
        self.result: Optional[ScanResult] = None
        #: Called once with the pending query when the result is merged
        #: (the service uses this to store into the result cache).
        self.on_complete: Optional[Callable[["PendingQuery"], None]] = None
        self._remaining = len(morsels)
        if not morsels:  # empty table/partition list: complete at submit
            self._finish(submit_time)

    @property
    def done(self) -> bool:
        return self.result is not None

    def _set_partial(self, index: int, partial: ScanResult, now: float) -> None:
        assert self.partials[index] is None
        self.partials[index] = partial
        self._remaining -= 1
        if self._remaining == 0:
            self._finish(now)

    def _finish(self, now: float) -> None:
        self.result = merge_partials([p for p in self.partials if p is not None])
        self.complete_time = now
        if self.on_complete is not None:
            self.on_complete(self)

    @property
    def elapsed(self) -> float:
        """Simulated submit-to-complete time (the query's response time)."""
        assert self.complete_time is not None
        return self.complete_time - self.submit_time


class QueryWorker(Actor):
    """Runs morsels from the pool's shared queue, one per step."""

    def __init__(
        self,
        pool: "QueryWorkerPool",
        name: str,
        node: Optional[CpuNode] = None,
    ) -> None:
        self.pool = pool
        self.name = name
        self.node = node
        self.morsels_run = 0

    def step(self, sched: Scheduler) -> Optional[float]:
        item = self.pool._take()
        if item is None:
            return None
        pending, index = item
        chaos = self.pool._chaos
        if chaos.injectors is not None:
            decision = chaos.consult(
                "morsel", worker=self.name,
                kind=pending.morsels[index].kind,
            )
            if decision.action is sites.Action.STALL:
                self.pool._requeue(item)
                return MORSEL_DISPATCH_COST
            if decision.action is sites.Action.DELAY:
                self.pool._requeue(item)
                return decision.delay
        partial = pending.morsels[index].run()
        pending._set_partial(index, partial, sched.now)
        self.morsels_run += 1
        self.pool._on_morsel_done(pending)
        return MORSEL_DISPATCH_COST + partial.stats.cost_seconds


class QueryWorkerPool:
    """A fixed set of query workers draining one shared morsel queue.

    ``parallel_backend`` selects how morsels execute:

    * ``"sim"`` (default): scheduler-actor workers on the virtual clock
      -- deterministic, chaos-injectable, models multicore speedup in
      simulated cost.
    * ``"process"``: a :class:`~repro.query.parallel.ProcessScanBackend`
      runs the columnar kernels in real OS processes over shared-memory
      CU buffers; ``submit`` blocks until the result is merged and
      records the real wall clock in ``last_wall_seconds``.  Rows and
      stats are identical to the sim backend and the serial scan.
    """

    queries_submitted = obs.view("_queries")
    morsels_dispatched = obs.view("_morsels")

    def __init__(
        self,
        sched: Scheduler,
        n_workers: int = 4,
        node: Optional[CpuNode] = None,
        name: str = "query",
        parallel_backend: str = "sim",
    ) -> None:
        if n_workers < 1:
            raise ValueError("query pool needs at least one worker")
        if parallel_backend not in ("sim", "process"):
            raise ValueError(
                f"unknown parallel backend {parallel_backend!r}"
            )
        self.sched = sched
        self.parallel_backend = parallel_backend
        self._queue: deque[tuple[PendingQuery, int]] = deque()
        self._queries = obs.counter("query.pool.queries")
        self._morsels = obs.counter("query.pool.morsels")
        self._queue_depth = obs.gauge("query.pool.queue_depth")
        self._query_seconds = obs.histogram("query.pool.query_seconds")
        self._wall_seconds = obs.histogram("query.pool.wall_seconds")
        self._chaos = sites.declare("query.pool", owner=self)
        #: Real elapsed seconds of the last process-backend submit.
        self.last_wall_seconds: Optional[float] = None
        self._process_backend = None
        if parallel_backend == "process":
            from repro.query.parallel import ProcessScanBackend

            self._process_backend = ProcessScanBackend(n_workers)
            self.workers = []
            return
        self.workers = [
            QueryWorker(self, f"{name}-worker-{i}", node=node)
            for i in range(n_workers)
        ]
        for worker in self.workers:
            sched.add_actor(worker)

    # ------------------------------------------------------------------
    def submit(self, morsels: list[ScanMorsel]) -> PendingQuery:
        """Enqueue a planned scan; workers are woken immediately."""
        if self._process_backend is not None:
            return self._submit_process(morsels)
        pending = PendingQuery(morsels, self.sched.now)
        self._queries.inc()
        if morsels:
            for index in range(len(morsels)):
                self._queue.append((pending, index))
            self._queue_depth.set(len(self._queue))
            for worker in self.workers:
                self.sched.kick(worker)
        else:
            self._query_seconds.observe(0.0)
        return pending

    def _submit_process(self, morsels: list[ScanMorsel]) -> PendingQuery:
        """Process backend: execute synchronously, merge in plan order."""
        pending = PendingQuery(morsels, self.sched.now)
        self._queries.inc()
        if not morsels:
            self._query_seconds.observe(0.0)
            return pending
        started = time.perf_counter()
        partials = self._process_backend.run_morsels(morsels)
        self.last_wall_seconds = time.perf_counter() - started
        self._wall_seconds.observe(self.last_wall_seconds)
        for index, partial in enumerate(partials):
            self._morsels.inc()
            pending._set_partial(index, partial, self.sched.now)
        return pending

    def shutdown(self) -> None:
        if self._process_backend is not None:
            self._process_backend.close()
        for worker in self.workers:
            self.sched.remove_actor(worker)

    # -- worker side ----------------------------------------------------
    def _take(self) -> Optional[tuple[PendingQuery, int]]:
        if not self._queue:
            return None
        item = self._queue.popleft()
        self._morsels.inc()
        self._queue_depth.set(len(self._queue))
        return item

    def _requeue(self, item: tuple[PendingQuery, int]) -> None:
        self._queue.appendleft(item)
        self._queue_depth.set(len(self._queue))

    def _on_morsel_done(self, pending: PendingQuery) -> None:
        if pending.done:
            self._query_seconds.observe(pending.elapsed)

    @property
    def queue_depth(self) -> int:
        return len(self._queue)
