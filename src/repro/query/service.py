"""QueryService: morsel-parallel, cache-accelerated standby scans.

One service fronts one standby: it plans scans at the currently
published QuerySCN, probes the result cache, and dispatches misses to
the worker pool.  The cache registers as a flush invalidation listener
at construction, so its entries are evicted strictly before any
QuerySCN that invalidated them is published.
"""

from __future__ import annotations

from typing import Optional

from repro import obs
from repro.common.scn import SCN
from repro.imcs.scan import Predicate, ScanResult
from repro.query.cache import ResultCache
from repro.query.executor import PendingQuery, QueryWorkerPool
from repro.sim.scheduler import Scheduler


class QueryHandle:
    """One submitted query: resolved immediately on a cache hit,
    otherwise when the worker pool finishes its morsels."""

    __slots__ = ("key", "scn", "cached", "pending", "_result", "submit_time")

    def __init__(
        self,
        key,
        scn: SCN,
        cached: bool,
        submit_time: float,
        pending: Optional[PendingQuery] = None,
        result: Optional[ScanResult] = None,
    ) -> None:
        self.key = key
        self.scn = scn
        self.cached = cached
        self.pending = pending
        self._result = result
        self.submit_time = submit_time

    @property
    def done(self) -> bool:
        return self._result is not None or (
            self.pending is not None and self.pending.done
        )

    @property
    def result(self) -> ScanResult:
        if self._result is not None:
            return self._result
        assert self.pending is not None and self.pending.done
        return self.pending.result


class QueryService:
    """The standby's query-serving front end."""

    submitted = obs.view("_submitted")

    def __init__(
        self,
        standby,
        sched: Scheduler,
        n_workers: int = 4,
        cache_capacity: int = 256,
        enable_cache: bool = True,
        node=None,
        name: str = "query",
        parallel_backend: str = "sim",
    ) -> None:
        self.standby = standby
        self.sched = sched
        self.pool = QueryWorkerPool(
            sched, n_workers,
            node=node if node is not None else standby.node,
            name=name,
            parallel_backend=parallel_backend,
        )
        self.cache: Optional[ResultCache] = (
            ResultCache(cache_capacity) if enable_cache else None
        )
        if self.cache is not None and standby.dbim_enabled:
            standby.flush.add_invalidation_listener(self.cache)
        self._submitted = obs.counter("query.service.submitted")

    # ------------------------------------------------------------------
    @staticmethod
    def _fingerprint(
        predicates: Optional[list[Predicate]],
        columns: Optional[list[str]],
        partitions: Optional[list[str]],
    ):
        return (
            tuple(predicates) if predicates else (),
            tuple(columns) if columns is not None else None,
            tuple(partitions) if partitions is not None else None,
        )

    # ------------------------------------------------------------------
    def submit(
        self,
        table_name: str,
        predicates: Optional[list[Predicate]] = None,
        columns: Optional[list[str]] = None,
        partitions: Optional[list[str]] = None,
    ) -> QueryHandle:
        """Plan + dispatch one scan at the published QuerySCN."""
        self._submitted.inc()
        scn = self.standby.query_scn.value
        now = self.sched.now
        key = (scn, table_name, self._fingerprint(
            predicates, columns, partitions
        ))
        if self.cache is not None:
            hit = self.cache.lookup(key)
            if hit is not None:
                return QueryHandle(
                    key, scn, cached=True, submit_time=now, result=hit
                )
        table = self.standby.catalog.table(table_name)
        part_names = (
            partitions if partitions is not None else list(table.partitions)
        )
        object_ids = [table.partition(p).object_id for p in part_names]
        epochs = (
            self.cache.snapshot_epochs(object_ids)
            if self.cache is not None else None
        )
        morsels = self.standby.scan_engine.plan_morsels(
            table, scn, predicates, columns, partitions
        )
        pending = self.pool.submit(morsels)
        if self.cache is not None:
            cache = self.cache

            def store(done: PendingQuery) -> None:
                cache.put(key, object_ids, done.result, epochs)

            if pending.done:  # zero-morsel scan completed at submit
                store(pending)
            else:
                pending.on_complete = store
        return QueryHandle(
            key, scn, cached=False, submit_time=now, pending=pending
        )

    def scan(
        self,
        table_name: str,
        predicates: Optional[list[Predicate]] = None,
        columns: Optional[list[str]] = None,
        partitions: Optional[list[str]] = None,
        max_time: float = 600.0,
    ) -> tuple[ScanResult, bool]:
        """Submit and run the scheduler until the query completes.

        Returns ``(result, served_from_cache)``.  Only for callers that
        *drive* the scheduler (tests, benchmarks); actors inside the
        simulation must use :meth:`submit` and poll the handle.
        """
        handle = self.submit(table_name, predicates, columns, partitions)
        if not handle.done:
            ok = self.sched.run_until_condition(
                lambda: handle.done, max_time=max_time
            )
            if not ok:
                raise TimeoutError("query did not complete in time")
        return handle.result, handle.cached

    def shutdown(self) -> None:
        self.pool.shutdown()
