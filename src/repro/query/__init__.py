"""repro.query -- the standby query service layer.

The paper's deployment story (Fig. 2, Table 1/2) offloads analytics to
the standby; this package turns the single-threaded ``ScanEngine.scan``
into a service that can carry that load:

* :mod:`repro.query.executor` -- morsel-parallel scan execution: a scan
  is planned into per-IMCU / per-block-chunk morsels
  (:meth:`ScanEngine.plan_morsels`) and dispatched to a pool of
  scheduler-actor query workers;
* :mod:`repro.query.cache` -- a QuerySCN-consistent result cache.  Safe
  because the advancement protocol flushes every invalidation with
  commitSCN <= S *before* publishing S: a result computed at a published
  QuerySCN can never change;
* :mod:`repro.query.admission` -- admission control for the session
  layer (bounded concurrency, wait queue with timeouts);
* :mod:`repro.query.service` -- :class:`QueryService`, tying the
  executor and cache to one standby.
"""

from repro.query.admission import (
    AdmissionController,
    AdmissionTimeout,
    PoolExhaustedError,
)
from repro.query.cache import CACHE_HIT_COST, ResultCache
from repro.query.executor import PendingQuery, QueryWorker, QueryWorkerPool
from repro.query.parallel import ProcessScanBackend
from repro.query.service import QueryHandle, QueryService

__all__ = [
    "AdmissionController",
    "AdmissionTimeout",
    "CACHE_HIT_COST",
    "PendingQuery",
    "PoolExhaustedError",
    "ProcessScanBackend",
    "QueryHandle",
    "QueryService",
    "QueryWorker",
    "QueryWorkerPool",
    "ResultCache",
]
