"""The QuerySCN-consistent result cache.

Keyed by ``(QuerySCN, table, fingerprint)`` where the fingerprint covers
the compiled predicate list, projection and partition list.  Two
properties make the cache safe (cf. Li et al., "consistent snapshot"
algorithms -- reuse is sound exactly when the snapshot is immutable):

* a result computed at a *published* QuerySCN can never change -- the
  advancement protocol flushes every invalidation with commitSCN <= S
  before publishing S, and Consistent Read pins all reads to S;
* entries are nevertheless evicted the moment a flush group / coarse
  invalidation / DDL marker touches their object, **before** the new
  QuerySCN is published (the cache registers as an
  :class:`~repro.dbim_adg.flush.InvalidationListener`), so no entry ever
  survives a publication that invalidated its object.

A per-object *epoch* guards the in-flight window: a morsel-parallel
query that completes after its object was invalidated must not store its
(still snapshot-correct, but now stale-keyed) result -- the service
captures the epochs at submit and :meth:`put` refuses the store if they
moved.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import replace
from typing import Hashable, Iterable, Optional

from repro import obs
from repro.common.ids import ObjectId, TenantId
from repro.common.scn import SCN
from repro.dbim_adg.flush import InvalidationListener
from repro.imcs.scan import ScanResult

#: Simulated cost of serving a scan from the cache (hash probe + copy).
CACHE_HIT_COST = 2e-7

CacheKey = Hashable


class ResultCache(InvalidationListener):
    """LRU result cache with object-granular invalidation."""

    hits = obs.view("_hits")
    misses = obs.view("_misses")
    stores = obs.view("_stores")
    stale_stores = obs.view("_stale_stores")
    invalidation_evictions = obs.view("_invalidation_evictions")

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        #: key -> (result, object_ids the result depends on)
        self._entries: "OrderedDict[CacheKey, tuple[ScanResult, frozenset[ObjectId]]]" = (
            OrderedDict()
        )
        self._by_object: dict[ObjectId, set[CacheKey]] = {}
        self._epochs: dict[ObjectId, int] = {}
        self._global_epoch = 0
        self._hits = obs.counter("query.cache.hits")
        self._misses = obs.counter("query.cache.misses")
        self._stores = obs.counter("query.cache.stores")
        self._stale_stores = obs.counter("query.cache.stale_stores")
        self._invalidation_evictions = obs.counter(
            "query.cache.invalidation_evictions"
        )
        self._entries_gauge = obs.gauge("query.cache.entries")

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # epochs (in-flight store guard)
    # ------------------------------------------------------------------
    def snapshot_epochs(
        self, object_ids: Iterable[ObjectId]
    ) -> dict[Optional[ObjectId], tuple[int, int]]:
        """Epoch snapshot the in-flight store guard compares against.

        A zero-object scan (e.g. an explicit empty partition list) has no
        per-object epochs to pin, so it is keyed to the *global* epoch --
        otherwise its ``{} == {}`` guard would pass vacuously and a store
        racing a coarse invalidation (``clear()``) could never be
        refused.  ``None`` is the global-epoch sentinel key.
        """
        epochs = {
            oid: (self._global_epoch, self._epochs.get(oid, 0))
            for oid in object_ids
        }
        if not epochs:
            return {None: (self._global_epoch, 0)}
        return epochs

    # ------------------------------------------------------------------
    # lookup / store
    # ------------------------------------------------------------------
    def lookup(self, key: CacheKey) -> Optional[ScanResult]:
        """A hit returns a *copy* whose cost is the (tiny) cache-serve
        cost -- the original scan's cost stays on the stored entry."""
        entry = self._entries.get(key)
        if entry is None:
            self._misses.inc()
            return None
        self._entries.move_to_end(key)
        self._hits.inc()
        result, __ = entry
        return ScanResult(
            rows=list(result.rows),
            stats=replace(result.stats, cost_seconds=CACHE_HIT_COST),
        )

    def put(
        self,
        key: CacheKey,
        object_ids: Iterable[ObjectId],
        result: ScanResult,
        epochs: Optional[dict[ObjectId, tuple[int, int]]] = None,
    ) -> bool:
        """Store a result; refused (False) if any dependency object was
        invalidated since ``epochs`` were captured at submit time."""
        object_ids = frozenset(object_ids)
        if epochs is not None and epochs != self.snapshot_epochs(object_ids):
            self._stale_stores.inc()
            return False
        if key in self._entries:
            self._drop(key)
        while len(self._entries) >= self.capacity:
            oldest, __ = next(iter(self._entries.items()))
            self._drop(oldest)
        self._entries[key] = (result, object_ids)
        for oid in object_ids:
            self._by_object.setdefault(oid, set()).add(key)
        self._stores.inc()
        self._entries_gauge.set(len(self._entries))
        return True

    def _drop(self, key: CacheKey) -> None:
        __, object_ids = self._entries.pop(key)
        for oid in object_ids:
            keys = self._by_object.get(oid)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._by_object[oid]
        self._entries_gauge.set(len(self._entries))

    def _evict_object(self, object_id: ObjectId) -> None:
        self._epochs[object_id] = self._epochs.get(object_id, 0) + 1
        for key in list(self._by_object.get(object_id, ())):
            self._drop(key)
            self._invalidation_evictions.inc()

    def clear(self) -> None:
        self._global_epoch += 1
        self._invalidation_evictions.inc(len(self._entries))
        self._entries.clear()
        self._by_object.clear()
        self._entries_gauge.set(0)

    # ------------------------------------------------------------------
    # InvalidationListener (called during flush, before publication)
    # ------------------------------------------------------------------
    def on_object_invalidated(self, object_id: ObjectId, scn: SCN) -> None:
        self._evict_object(object_id)

    def on_object_dropped(self, object_id: ObjectId, scn: SCN) -> None:
        self._evict_object(object_id)

    def on_coarse_invalidation(self, tenant: TenantId, scn: SCN) -> None:
        # coarse invalidation is tenant-wide and the cache is not
        # tenant-indexed: drop everything (rare: post-restart catch-up)
        self.clear()
