"""Real-parallel scan execution over shared-memory CU buffers.

The simulated :class:`~repro.query.executor.QueryWorkerPool` models
multicore speedup on the virtual clock; this module makes it real: an
opt-in ``parallel_backend="process"`` executes the columnar part of each
IMCU morsel in a :class:`concurrent.futures.ProcessPoolExecutor`, with
the CU buffers published once into POSIX shared memory
(:mod:`multiprocessing.shared_memory`) and attached zero-copy by the
workers.

The split per IMCU morsel keeps parallel == serial row-for-row:

* parent: usability check, SMU pin, storage-index pruning, validity
  mask, stats accounting, and the row-store reconcile tail
  (:meth:`ScanEngine._reconcile_unit` -- it needs the block store and
  Consistent Read, which do not cross process boundaries);
* worker: predicate masks + position extraction via the *same*
  :func:`~repro.imcs.scan.unit_matched_positions` kernel the serial scan
  uses, then batch ``take`` projection -- the CPU-heavy encoded-domain
  work.

Morsels the worker cannot take (row-store chunks, stats placeholders,
unusable units, aggregation push-down hooks) run in the parent exactly
as the serial path would.  Partials are merged in plan order, so rows
and stats are byte-identical to ``parallel_backend="sim"`` and to the
serial scan.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Optional

import numpy as np

from repro.imcs.compression import cu_from_export, export_cu
from repro.imcs.scan import (
    IMCS_COST_PER_ROW,
    Predicate,
    ScanMorsel,
    ScanResult,
    unit_matched_positions,
)

#: (shm_name, dtype_str, shape) -- enough to rebuild a numpy view.
ArraySpec = tuple[str, str, tuple[int, ...]]


@dataclass(frozen=True)
class ColumnarTask:
    """Picklable description of one IMCU morsel's columnar work."""

    #: (column name, cu cache key, export kind, buffer specs, meta)
    columns: tuple[tuple[str, tuple, str, tuple[tuple[str, ArraySpec], ...], dict], ...]
    valid: ArraySpec
    predicates: tuple[Predicate, ...]
    names: tuple[str, ...]


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}
_CU_CACHE: dict[tuple, object] = {}


def _attach_array(spec: ArraySpec) -> np.ndarray:
    name, dtype, shape = spec
    shm = _ATTACHED.get(name)
    if shm is None:
        # Attaching re-registers the name with the fork-shared resource
        # tracker; registrations collapse, and the parent unlinks (and
        # unregisters) every segment exactly once at shutdown.
        shm = shared_memory.SharedMemory(name=name)
        _ATTACHED[name] = shm
    return np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)


class _ColumnSet:
    """Duck-types ``IMCU.column`` for :func:`unit_matched_positions`."""

    __slots__ = ("_columns",)

    def __init__(self, columns: dict) -> None:
        self._columns = columns

    def column(self, name: str):
        return self._columns[name]


def _run_columnar_task(task: ColumnarTask) -> list[tuple]:
    """Worker entry point: masks + projection over shared CU buffers."""
    columns = {}
    for name, cu_key, kind, specs, meta in task.columns:
        cu = _CU_CACHE.get(cu_key)
        if cu is None:
            arrays = {buf: _attach_array(spec) for buf, spec in specs}
            cu = cu_from_export(kind, arrays, meta)
            _CU_CACHE[cu_key] = cu
        columns[name] = cu
    valid = _attach_array(task.valid)
    positions = unit_matched_positions(
        _ColumnSet(columns), valid, list(task.predicates)
    )
    if positions.size == 0:
        return []
    taken = [columns[name].take(positions) for name in task.names]
    if len(taken) == 1:
        return [(value,) for value in taken[0]]
    return list(zip(*taken))


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
class _ShmArena:
    """Parent-side registry of shared-memory segments.

    Each distinct buffer (keyed by CU identity / SMU validity epoch) is
    copied into shared memory once and reused across queries; everything
    is unlinked at :meth:`close`.
    """

    def __init__(self) -> None:
        self._segments: dict[tuple, tuple[shared_memory.SharedMemory, ArraySpec]] = {}

    def share(self, key: tuple, array: np.ndarray) -> ArraySpec:
        entry = self._segments.get(key)
        if entry is not None:
            return entry[1]
        array = np.ascontiguousarray(array)
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, array.nbytes)
        )
        if array.nbytes:
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
            view[...] = array
        spec: ArraySpec = (shm.name, array.dtype.str, tuple(array.shape))
        self._segments[key] = (shm, spec)
        return spec

    def close(self) -> None:
        for shm, _spec in self._segments.values():
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:
                pass
        self._segments.clear()


class ProcessScanBackend:
    """Executes scan morsels with real OS processes.

    Only the columnar kernels cross the process boundary; everything
    stateful (SMU pins, block store, Consistent Read, push-down hooks)
    stays in the parent.  ``run_morsels`` returns one partial per morsel
    in plan order.
    """

    def __init__(self, n_workers: int) -> None:
        self.n_workers = n_workers
        self._arena = _ShmArena()
        self._executor: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------
    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.n_workers,
                mp_context=multiprocessing.get_context("fork"),
            )
        return self._executor

    def _export_task(self, ctx, valid: np.ndarray) -> ColumnarTask:
        imcu = ctx.smu.imcu
        compiled = ctx.compiled
        columns = []
        for name in compiled.needed:
            cu = imcu.column(name)
            kind, arrays, meta = export_cu(cu)
            cu_key = (imcu.imcu_id, name)
            specs = tuple(
                (buf, self._arena.share(cu_key + (buf,), array))
                for buf, array in arrays.items()
            )
            columns.append((name, cu_key, kind, specs, meta))
        valid_spec = self._arena.share(
            (imcu.imcu_id, "::valid", ctx.smu._epoch), valid
        )
        return ColumnarTask(
            columns=tuple(columns),
            valid=valid_spec,
            predicates=tuple(compiled.predicates),
            names=tuple(compiled.names),
        )

    # ------------------------------------------------------------------
    def run_morsels(self, morsels: list[ScanMorsel]) -> list[ScanResult]:
        """Run every morsel; columnar parts fan out across processes.

        A worker process dying mid-scan surfaces as
        :class:`BrokenProcessPool`; the whole backend is torn down before
        re-raising -- the executor cannot be reused, and keeping the
        arena's segments linked would orphan them in ``/dev/shm`` (the
        parent would never reach :meth:`close` on this executor
        generation).  A fresh executor and arena are built lazily on the
        next call.
        """
        try:
            return self._run_morsels(morsels)
        except BrokenProcessPool:
            self._teardown()
            raise

    def _run_morsels(self, morsels: list[ScanMorsel]) -> list[ScanResult]:
        executor = self._ensure_executor()
        # Pass 1 (submit): pin usable units, ship their columnar tasks.
        plan: list[tuple] = []  # ("parent",) | ("pruned", ctx) | ("task", ctx, fut)
        pinned: list = []
        try:
            for morsel in morsels:
                ctx = morsel.unit_ctx
                if (
                    morsel.kind != "imcu"
                    or ctx is None
                    or ctx.on_imcu_matches is not None
                    or not ctx.engine._unit_usable(ctx.smu, ctx.compiled)
                ):
                    plan.append(("parent",))
                    continue
                ctx.smu.pin()
                pinned.append(ctx)
                valid = ctx.smu.valid_row_mask()
                if any(
                    p.can_prune(ctx.smu.imcu) for p in ctx.compiled.predicates
                ):
                    plan.append(("pruned", ctx))
                    continue
                task = self._export_task(ctx, valid)
                plan.append(("task", ctx, executor.submit(
                    _run_columnar_task, task
                )))

            # Pass 2 (collect, in plan order): parent-side work overlaps
            # with the workers still computing later morsels.
            partials: list[ScanResult] = []
            for i, entry in enumerate(plan):
                if entry[0] == "parent":
                    partials.append(morsels[i].run())
                    continue
                ctx = entry[1]
                partial = ScanResult()
                try:
                    if entry[0] == "pruned":
                        partial.stats.imcus_pruned += 1
                    else:
                        partial.rows.extend(entry[2].result())
                        imcu = ctx.smu.imcu
                        partial.stats.imcus_used += 1
                        partial.stats.imcs_rows += imcu.n_rows
                        partial.stats.cost_seconds += (
                            IMCS_COST_PER_ROW * imcu.n_rows
                        )
                    ctx.engine._reconcile_unit(
                        ctx.table, ctx.store, ctx.smu, ctx.snapshot_scn,
                        ctx.compiled, partial,
                    )
                finally:
                    pinned.remove(ctx)
                    ctx.smu.unpin()
                partials.append(partial)
            return partials
        finally:
            # Exception path: drop pins taken in pass 1 but not yet
            # released by pass 2 (empty on success).
            for ctx in pinned:
                ctx.smu.unpin()

    # ------------------------------------------------------------------
    def _teardown(self) -> None:
        """Emergency cleanup after a worker death: abandon the broken
        executor without waiting and unlink every shared segment."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        self._arena.close()

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._arena.close()
