"""Admission control for the session layer.

The paper's north star is "heavy traffic from millions of users";
unbounded session creation just moves the collapse into the database.
:class:`AdmissionController` enforces a global concurrency bound and
optional per-service bounds, with a FIFO wait queue (bounded, with
per-waiter timeouts).  All decisions are synchronous -- this is a
cooperative single-threaded simulation, so "blocking" means parking a
:class:`Waiter` that is granted when a slot frees up (session close).

Surfaced through ``repro.obs``: active sessions and queue depth gauges,
a wait-time histogram, admitted/rejected/timeout counters.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro import obs
from repro.common.errors import InvalidStateError


class PoolExhaustedError(InvalidStateError):
    """Immediate connect refused: pool (or service) at its limit."""


class AdmissionTimeout(InvalidStateError):
    """A queued connect waited past its deadline."""


@dataclass(slots=True)
class Waiter:
    """One parked connection request.

    ``eligible`` is an optional extra admissibility predicate beyond slot
    availability — e.g. read-your-writes: "a standby whose published
    QuerySCN covers my commitSCN exists".  A waiter whose predicate is
    currently false is skipped by the drain without losing its queue
    position or consuming a slot; callers re-drain (:meth:`pump`) when
    the external condition may have changed (a QuerySCN publication).
    """

    service_name: str
    grant: Callable[[], None]
    enqueued_at: float
    deadline: Optional[float] = None
    on_timeout: Optional[Callable[[], None]] = None
    cancelled: bool = field(default=False)
    eligible: Optional[Callable[[], bool]] = None

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now > self.deadline

    def ready(self) -> bool:
        return self.eligible is None or bool(self.eligible())


class AdmissionController:
    """Bounded concurrency with a FIFO wait queue."""

    admitted = obs.view("_admitted")
    rejected = obs.view("_rejected")
    timeouts = obs.view("_timeouts")

    def __init__(
        self,
        limit: Optional[int] = None,
        per_service: Optional[dict[str, int]] = None,
        queue_limit: Optional[int] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.limit = limit
        self.per_service = dict(per_service or {})
        self.queue_limit = queue_limit
        self._clock = clock or (lambda: 0.0)
        self._active = 0
        self._active_by_service: dict[str, int] = {}
        self._waiters: deque[Waiter] = deque()
        self._admitted = obs.counter("query.admission.admitted")
        self._rejected = obs.counter("query.admission.rejected")
        self._timeouts = obs.counter("query.admission.timeouts")
        self._active_gauge = obs.gauge("query.admission.active")
        self._queue_gauge = obs.gauge("query.admission.queue_depth")
        self._wait_seconds = obs.histogram("query.admission.wait_seconds")

    # ------------------------------------------------------------------
    @property
    def active(self) -> int:
        return self._active

    @property
    def queue_depth(self) -> int:
        return len(self._waiters)

    def active_for(self, service_name: str) -> int:
        return self._active_by_service.get(service_name, 0)

    def _admissible(self, service_name: str) -> bool:
        if self.limit is not None and self._active >= self.limit:
            return False
        cap = self.per_service.get(service_name)
        return cap is None or self.active_for(service_name) < cap

    # ------------------------------------------------------------------
    def try_admit(self, service_name: str) -> bool:
        """Admit immediately, or refuse (no queueing)."""
        # a fair pool never lets a newcomer jump parked admissible
        # waiters; waiters whose eligibility predicate is false are not
        # admissible now, so a newcomer may take the slot they can't use
        self.expire_waiters()
        blocked = any(
            w.ready() for w in self._waiters if not w.cancelled
        )
        if blocked or not self._admissible(service_name):
            self._rejected.inc()
            return False
        self._grant_slot(service_name, waited=0.0)
        return True

    def enqueue(
        self,
        service_name: str,
        grant: Callable[[], None],
        timeout: Optional[float] = None,
        on_timeout: Optional[Callable[[], None]] = None,
        eligible: Optional[Callable[[], bool]] = None,
    ) -> Waiter:
        """Park a request; ``grant`` fires (synchronously) when a slot
        frees up.  May grant immediately if a slot is available now."""
        now = self._clock()
        waiter = Waiter(
            service_name, grant, enqueued_at=now,
            deadline=None if timeout is None else now + timeout,
            on_timeout=on_timeout, eligible=eligible,
        )
        if (
            self.queue_limit is not None
            and len(self._waiters) >= self.queue_limit
        ):
            self._rejected.inc()
            raise PoolExhaustedError(
                f"admission queue full ({self.queue_limit} waiting)"
            )
        self._waiters.append(waiter)
        self._queue_gauge.set(len(self._waiters))
        self._drain()
        return waiter

    def cancel(self, waiter: Waiter) -> None:
        waiter.cancelled = True

    def release(self, service_name: str) -> None:
        """A session closed: free its slot and hand it to a waiter."""
        if self._active <= 0:
            raise InvalidStateError("release without matching admit")
        self._active -= 1
        count = self._active_by_service.get(service_name, 0) - 1
        if count > 0:
            self._active_by_service[service_name] = count
        else:
            self._active_by_service.pop(service_name, None)
        self._active_gauge.set(self._active)
        self._drain()

    # ------------------------------------------------------------------
    def expire_waiters(self) -> int:
        """Drop waiters past their deadline (lazy: called on every
        admission event; tests/drivers may call it on a timer)."""
        now = self._clock()
        expired = 0
        kept: deque[Waiter] = deque()
        for waiter in self._waiters:
            if waiter.cancelled:
                continue
            if waiter.expired(now):
                expired += 1
                self._timeouts.inc()
                self._wait_seconds.observe(now - waiter.enqueued_at)
                if waiter.on_timeout is not None:
                    waiter.on_timeout()
            else:
                kept.append(waiter)
        self._waiters = kept
        self._queue_gauge.set(len(self._waiters))
        return expired

    def _grant_slot(self, service_name: str, waited: float) -> None:
        self._active += 1
        self._active_by_service[service_name] = (
            self.active_for(service_name) + 1
        )
        self._admitted.inc()
        self._active_gauge.set(self._active)
        self._wait_seconds.observe(waited)

    def pump(self) -> None:
        """Re-run the drain because an *external* eligibility condition
        may have changed (e.g. a standby published a newer QuerySCN and a
        read-your-writes waiter now qualifies).  Safe to call any time.
        """
        self._drain()

    def _drain(self) -> None:
        """Grant parked waiters in FIFO order while slots allow.

        A waiter whose *service* is capped does not block a later waiter
        on a different service (no head-of-line blocking across
        services); FIFO order is preserved within a service.  A waiter
        whose eligibility predicate is false is likewise skipped without
        a grant — it keeps its position for the next drain/pump.
        """
        self.expire_waiters()
        now = self._clock()
        remaining: deque[Waiter] = deque()
        while self._waiters:
            waiter = self._waiters.popleft()
            if self._admissible(waiter.service_name) and waiter.ready():
                self._grant_slot(
                    waiter.service_name, waited=now - waiter.enqueued_at
                )
                waiter.grant()
            else:
                remaining.append(waiter)
        self._waiters = remaining
        self._queue_gauge.set(len(self._waiters))
