"""repro.obs -- first-class observability for the redo pipeline.

Two pieces (see DESIGN.md §10):

* :class:`~repro.obs.registry.MetricsRegistry` -- named counters /
  gauges / histograms / series with label support and deterministic
  snapshot-to-dict / JSON export;
* :class:`~repro.obs.lifecycle.RedoLifecycleTracer` -- stamps tracked
  redo records through the pipeline stages on the sim clock, yielding
  per-stage latency histograms and the end-to-end "redo visibility lag"
  (Fig. 11) from instruments instead of bench-side bookkeeping.

Activation mirrors :mod:`repro.chaos.sites`: pipeline components declare
their instruments at construction through the module-level helpers
(``obs.counter(...)``); while a registry is :func:`collecting`, the
instruments land there, otherwise they are free-standing (still live, so
the components' attribute views keep working with zero setup)::

    registry = MetricsRegistry()
    with obs.collecting(registry):
        deployment = Deployment.build(...)   # attaches a tracer too
    ...
    print(registry.snapshot().to_text())

``python -m repro.obs`` runs a short scenario and renders its snapshot.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    Instrument,
    MetricsRegistry,
    MetricsSnapshot,
    Series,
)
from repro.obs.lifecycle import STAGES, RedoLifecycleTracer

_ACTIVE: list[MetricsRegistry] = []


def current() -> Optional[MetricsRegistry]:
    """The innermost collecting registry, or None."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def collecting(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Route instrument declarations to ``registry`` within the block."""
    _ACTIVE.append(registry)
    try:
        yield registry
    finally:
        _ACTIVE.pop()


def counter(name: str, **labels) -> Counter:
    """Declare a counter in the collecting registry (or free-standing)."""
    registry = current()
    if registry is not None:
        return registry.counter(name, **labels)
    return Counter(name, tuple(sorted((k, str(v)) for k, v in labels.items())))


def gauge(name: str, **labels) -> Gauge:
    registry = current()
    if registry is not None:
        return registry.gauge(name, **labels)
    return Gauge(name, tuple(sorted((k, str(v)) for k, v in labels.items())))


def histogram(name: str, **labels) -> Histogram:
    registry = current()
    if registry is not None:
        return registry.histogram(name, **labels)
    return Histogram(
        name, tuple(sorted((k, str(v)) for k, v in labels.items()))
    )


def series(name: str, **labels) -> Series:
    registry = current()
    if registry is not None:
        return registry.series(name, **labels)
    return Series(name, tuple(sorted((k, str(v)) for k, v in labels.items())))


class view:
    """Class-level descriptor exposing an instrument's value as a plain
    read/write attribute -- the thin view that keeps the pipeline's legacy
    counter APIs (``component.duplicates_discarded``, ``+= 1`` updates,
    ``clear()`` resets) working over registry-backed instruments.

        class RedoReceiver:
            gaps_resolved = obs.view("_gaps_resolved")
            def __init__(self):
                self._gaps_resolved = obs.counter("redo.receiver.gaps_resolved")
    """

    def __init__(self, attr: str) -> None:
        self._attr = attr

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        return getattr(obj, self._attr).value

    def __set__(self, obj, value) -> None:
        getattr(obj, self._attr).value = value


def tracer_of(registry: Optional[MetricsRegistry]) -> Optional[RedoLifecycleTracer]:
    """The registry's tracer, tolerating a None registry (hot-path sugar)."""
    return registry.tracer if registry is not None else None


__all__ = [
    "STAGES",
    "Counter",
    "Gauge",
    "Histogram",
    "Instrument",
    "MetricsRegistry",
    "MetricsSnapshot",
    "RedoLifecycleTracer",
    "Series",
    "collecting",
    "counter",
    "current",
    "gauge",
    "histogram",
    "series",
    "tracer_of",
    "view",
]
