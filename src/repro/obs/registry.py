"""The metrics registry: named, labelled instruments with snapshots.

The paper's evaluation (Figs. 9-11, Table 2) is entirely about measured
pipeline behaviour, but the repro historically recorded it with ad-hoc
counters scattered across the pipeline classes.  This module gives those
numbers one home:

* **Counter** -- monotonically adjusted numeric value (``inc``);
* **Gauge**   -- last-write-wins value (``set``);
* **Histogram** -- raw samples with percentile summaries, the shape the
  paper uses for latency breakdowns;
* **Series** -- (simulated time, value) points, the Fig. 11 shape.

Instruments are identified by a dotted ``name`` plus optional labels
(``obs.counter("adg.worker.cvs_applied", worker=3)``).  A registry hands
out *distinct* instruments per declaration: when a second component
declares an identical (name, labels) pair -- e.g. one RecoveryWorker per
MIRA apply instance -- the registry disambiguates it with an automatic
``i`` label instead of silently sharing the count, so the per-component
attribute views the pipeline exposes stay exact.  Aggregation across the
duplicates is a read-side concern (:meth:`MetricsRegistry.total`).

Components bind instruments at construction through the module-level
helpers in :mod:`repro.obs`; with no registry collecting they receive
free-standing instruments, so the instrumentation works (and costs one
method call) everywhere -- unit tests, benchmarks, examples -- without
any harness.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Iterator, Optional

from repro.metrics.stats import _percentile_of_sorted

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.lifecycle import RedoLifecycleTracer

#: Label key reserved for the registry's duplicate disambiguation.
AUTO_LABEL = "i"

Labels = tuple[tuple[str, str], ...]


def _freeze_labels(labels: dict) -> Labels:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Instrument:
    """Common identity of every instrument kind."""

    kind = "instrument"
    __slots__ = ("name", "labels")

    def __init__(self, name: str, labels: Labels = ()) -> None:
        self.name = name
        self.labels = labels

    @property
    def key(self) -> tuple[str, Labels]:
        return (self.name, self.labels)

    def describe(self) -> str:
        if not self.labels:
            return self.name
        rendered = ",".join(f"{k}={v}" for k, v in self.labels)
        return f"{self.name}{{{rendered}}}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.describe()!r})"


class Counter(Instrument):
    """A numeric total.  ``value`` is writable so the pipeline's legacy
    attribute APIs (``component.stat += 1``, ``clear()`` resets) keep
    working as thin views over the instrument."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self, name: str, labels: Labels = ()) -> None:
        super().__init__(name, labels)
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def export(self) -> dict:
        return {"value": self.value}


class Gauge(Instrument):
    """A last-write-wins value."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self, name: str, labels: Labels = ()) -> None:
        super().__init__(name, labels)
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def export(self) -> dict:
        return {"value": self.value}


class Histogram(Instrument):
    """Raw samples with the paper's summary statistics on read."""

    kind = "histogram"
    __slots__ = ("samples",)

    def __init__(self, name: str, labels: Labels = ()) -> None:
        super().__init__(name, labels)
        self.samples: list[float] = []

    def observe(self, value: float) -> None:
        self.samples.append(value)

    def __len__(self) -> int:
        return len(self.samples)

    def stats(self) -> dict:
        """count/sum/min/max/mean/p50/p95/p99; zeros when empty."""
        if not self.samples:
            return {
                "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0,
            }
        ordered = sorted(self.samples)
        total = sum(ordered)
        return {
            "count": len(ordered),
            "sum": total,
            "min": ordered[0],
            "max": ordered[-1],
            "mean": total / len(ordered),
            "p50": _percentile_of_sorted(ordered, 50),
            "p95": _percentile_of_sorted(ordered, 95),
            "p99": _percentile_of_sorted(ordered, 99),
        }

    def export(self) -> dict:
        return self.stats()


class Series(Instrument):
    """(time, value) points; step-interpolated reads (Fig. 11 shape)."""

    kind = "series"
    __slots__ = ("points",)

    def __init__(self, name: str, labels: Labels = ()) -> None:
        super().__init__(name, labels)
        self.points: list[tuple[float, float]] = []

    def record(self, t: float, value: float) -> None:
        self.points.append((t, value))

    def __len__(self) -> int:
        return len(self.points)

    @property
    def last_value(self) -> float:
        return self.points[-1][1] if self.points else 0.0

    def value_at(self, t: float) -> float:
        """Step-interpolated value at ``t`` (0 before the first point)."""
        value = 0.0
        for point_t, point_value in self.points:
            if point_t > t:
                break
            value = point_value
        return value

    def export(self) -> dict:
        out: dict = {"count": len(self.points)}
        if self.points:
            out["first"] = list(self.points[0])
            out["last"] = list(self.points[-1])
        return out


_KINDS = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
    "series": Series,
}


class MetricsRegistry:
    """Holds every instrument declared while the registry collects.

    ``tracer`` is the optional redo-lifecycle tracer; components capture
    the registry at construction and consult ``registry.tracer`` on their
    hot paths, so the tracer may be attached after the pipeline is built
    (the deployment does this automatically -- see ``Deployment.build``).
    """

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, Labels], Instrument] = {}
        self.tracer: Optional["RedoLifecycleTracer"] = None

    # -- declaration ----------------------------------------------------
    def _declare(self, kind: str, name: str, labels: dict) -> Instrument:
        frozen = _freeze_labels(labels)
        if (name, frozen) in self._instruments:
            # a second component declared the same identity: disambiguate
            # deterministically (construction order is simulation order)
            index = 1
            while (name, _freeze_labels({**labels, AUTO_LABEL: index})) \
                    in self._instruments:
                index += 1
            frozen = _freeze_labels({**labels, AUTO_LABEL: index})
        instrument = _KINDS[kind](name, frozen)
        self._instruments[(name, frozen)] = instrument
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._declare("counter", name, labels)  # type: ignore

    def gauge(self, name: str, **labels) -> Gauge:
        return self._declare("gauge", name, labels)  # type: ignore

    def histogram(self, name: str, **labels) -> Histogram:
        return self._declare("histogram", name, labels)  # type: ignore

    def series(self, name: str, **labels) -> Series:
        return self._declare("series", name, labels)  # type: ignore

    # -- reads ----------------------------------------------------------
    def get(self, name: str, **labels) -> Optional[Instrument]:
        """Exact (name, labels) lookup, or None."""
        return self._instruments.get((name, _freeze_labels(labels)))

    def find(self, name: str) -> list[Instrument]:
        """Every instrument declared under ``name``, any labels."""
        return [
            inst for (n, __), inst in self._instruments.items() if n == name
        ]

    def total(self, name: str) -> float:
        """Sum of every counter/gauge value declared under ``name``."""
        return sum(
            inst.value for inst in self.find(name)
            if isinstance(inst, (Counter, Gauge))
        )

    def __iter__(self) -> Iterator[Instrument]:
        return iter(self._instruments.values())

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> "MetricsSnapshot":
        return MetricsSnapshot.capture(self)


class MetricsSnapshot:
    """A point-in-time, deterministic export of a registry.

    Entries are sorted by (name, labels), values derive only from the
    simulation, and the dict/JSON shapes are stable -- so snapshots can be
    embedded in the chaos harness's byte-stable reports and diffed across
    benchmark runs.
    """

    def __init__(self, entries: list[dict]) -> None:
        self.entries = entries

    @classmethod
    def capture(cls, registry: MetricsRegistry) -> "MetricsSnapshot":
        entries = [
            {
                "name": inst.name,
                "labels": dict(inst.labels),
                "kind": inst.kind,
                **inst.export(),
            }
            for inst in sorted(registry, key=lambda i: i.key)
        ]
        return cls(entries)

    # -- reads ----------------------------------------------------------
    def get(self, name: str, **labels) -> Optional[dict]:
        frozen = _freeze_labels(labels)
        for entry in self.entries:
            if entry["name"] == name \
                    and _freeze_labels(entry["labels"]) == frozen:
                return entry
        return None

    def find(self, name: str) -> list[dict]:
        return [e for e in self.entries if e["name"] == name]

    def total(self, name: str) -> float:
        return sum(
            e["value"] for e in self.find(name)
            if e["kind"] in ("counter", "gauge")
        )

    def __len__(self) -> int:
        return len(self.entries)

    # -- exports --------------------------------------------------------
    def as_dict(self) -> dict:
        return {"instruments": self.entries}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def to_text(self) -> str:
        """Pretty-printed snapshot: one section per instrument kind."""
        from repro.metrics.render import render_table

        def label_str(entry: dict) -> str:
            if not entry["labels"]:
                return entry["name"]
            rendered = ",".join(
                f"{k}={v}" for k, v in sorted(entry["labels"].items())
            )
            return f"{entry['name']}{{{rendered}}}"

        sections = []
        values = [
            e for e in self.entries if e["kind"] in ("counter", "gauge")
        ]
        if values:
            sections.append(render_table(
                ["instrument", "kind", "value"],
                [[label_str(e), e["kind"], e["value"]] for e in values],
                title="counters / gauges",
            ))
        hists = [e for e in self.entries if e["kind"] == "histogram"]
        if hists:
            sections.append(render_table(
                ["histogram", "n", "mean", "p50", "p95", "max"],
                [
                    [
                        label_str(e), e["count"], e["mean"],
                        e["p50"], e["p95"], e["max"],
                    ]
                    for e in hists
                ],
                title="histograms",
            ))
        series = [e for e in self.entries if e["kind"] == "series"]
        if series:
            rows = []
            for e in series:
                first = e.get("first", ["-", "-"])
                last = e.get("last", ["-", "-"])
                rows.append(
                    [label_str(e), e["count"], first[1], last[1]]
                )
            sections.append(render_table(
                ["series", "points", "first", "last"],
                rows,
                title="series",
            ))
        if not sections:
            return "(empty snapshot)"
        return "\n\n".join(sections)
