"""Restart-phase observability.

A standby restart runs synchronously between scheduler steps, so unlike
the redo lifecycle it cannot be traced by stamping records as they flow --
instead each completed restart reports a :class:`RestartReport`
(:mod:`repro.restart.replay`) and this module lands its phases in the
metrics registry: one counter per mode, histograms for the modeled
restore/re-mine durations and the tail geometry.
"""

from __future__ import annotations

from repro import obs


def record_restart(report) -> None:
    """Publish one restart's phases to the current metrics registry."""
    obs.counter("restart.count", mode=report.mode).inc()
    if report.mode != "instant":
        return
    obs.counter("restart.units_restored").inc(report.units_restored)
    obs.counter("restart.rows_restored").inc(report.rows_restored)
    obs.counter("restart.cvs_remined").inc(report.cvs_remined)
    if report.coarse_fallback:
        obs.counter("restart.coarse_fallbacks").inc()
    obs.histogram("restart.restore_seconds").observe(report.restore_seconds)
    obs.histogram("restart.remine_seconds").observe(report.remine_seconds)
    obs.histogram("restart.modeled_seconds").observe(report.modeled_seconds)
    if report.tail_end_scn >= report.tail_start_scn > 0:
        obs.histogram("restart.tail_scns").observe(
            report.tail_end_scn - report.tail_start_scn + 1
        )
