"""The redo-lifecycle tracer: per-stage pipeline latency from instruments.

Stamps tracked redo records through every stage of the DBIM-on-ADG
pipeline using the simulated clock:

    generated -> shipped -> received -> merged -> applied -> mined
              -> chopped -> flushed -> published

``generated``..``mined`` are record-granular (``applied`` and ``mined``
complete when the record's *last* change vector is applied / sniffed, so
the stamps are meaningful under both SIRA and MIRA's filtered apply);
``chopped`` and ``flushed`` are transaction-granular and attach to the
commit record, whose SCN *is* the commitSCN; ``published`` covers every
tracked record at or below a freshly published QuerySCN.

Each stage completion observes the latency since the previous stamped
stage into ``lifecycle.stage.<stage>``; publication also observes the
end-to-end **redo visibility lag** (publish time minus generation time)
into ``lifecycle.visibility_lag`` and appends it to the
``lifecycle.visibility_lag_series`` series.  Two SCN-valued series --
``lifecycle.scn.generated`` (per thread) and ``lifecycle.scn.published``
-- reproduce the Fig. 11 lag plot from instruments alone; see
:meth:`RedoLifecycleTracer.scn_gap_at` and :meth:`worst_scn_gap`.

Pipeline components consult the tracer through the registry they captured
at construction (``registry.tracer``), so arming it after the deployment
is built works; unarmed, the hot paths pay one attribute check.
"""

from __future__ import annotations

import heapq
from typing import Optional

from repro.obs.registry import MetricsRegistry

#: Stage order.  A stage's latency histogram measures the time since the
#: latest *earlier* stage the record actually stamped, so records that
#: skip stages (no DBIM mining, non-commit records never chopped) still
#: produce well-defined deltas.
STAGES = (
    "generated",
    "shipped",
    "received",
    "merged",
    "applied",
    "mined",
    "chopped",
    "flushed",
    "published",
)

_STAGE_INDEX = {stage: i for i, stage in enumerate(STAGES)}


class _Tracked:
    __slots__ = ("stamps", "cvs_to_apply", "cvs_to_mine")

    def __init__(self, n_cvs: int) -> None:
        self.stamps: dict[str, float] = {}
        self.cvs_to_apply = n_cvs
        self.cvs_to_mine = n_cvs


class RedoLifecycleTracer:
    """Stamps sampled redo records through the pipeline stages.

    ``clock`` is anything with a ``now`` attribute in simulated seconds
    (the scheduler, or the sim clock itself).  ``sample_every`` tracks one
    record in N (by SCN) to bound tracking cost on long runs; the SCN
    series and stage counters still see every record.
    """

    def __init__(
        self,
        clock,
        registry: Optional[MetricsRegistry] = None,
        sample_every: int = 1,
    ) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self._clock = clock
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sample_every = sample_every
        reg = self.registry
        self._stage_hist = {
            stage: reg.histogram(f"lifecycle.stage.{stage}")
            for stage in STAGES[1:]
        }
        self.visibility_lag = reg.histogram("lifecycle.visibility_lag")
        self.lag_series = reg.series("lifecycle.visibility_lag_series")
        self.published_series = reg.series("lifecycle.scn.published")
        self.tracked_total = reg.counter("lifecycle.tracked")
        self.completed_total = reg.counter("lifecycle.completed")
        self._generated_series: dict[int, object] = {}
        self._tracked: dict[int, _Tracked] = {}
        #: Min-heap of tracked SCNs awaiting QuerySCN coverage.
        self._awaiting_publish: list[int] = []
        self._last_published: float = 0.0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._clock.now

    @property
    def in_flight(self) -> int:
        """Tracked records not yet covered by a published QuerySCN."""
        return len(self._tracked)

    def _sampled(self, scn: int) -> bool:
        return scn % self.sample_every == 0

    def _stamp(self, entry: _Tracked, stage: str, t: float) -> None:
        if stage in entry.stamps:
            return
        previous = None
        for earlier in STAGES[: _STAGE_INDEX[stage]]:
            if earlier in entry.stamps:
                previous = entry.stamps[earlier]
        entry.stamps[stage] = t
        if previous is not None:
            self._stage_hist[stage].observe(t - previous)

    def _track(self, scn: int, n_cvs: int) -> Optional[_Tracked]:
        entry = self._tracked.get(scn)
        if entry is None and self._sampled(scn):
            entry = _Tracked(n_cvs)
            self._tracked[scn] = entry
            heapq.heappush(self._awaiting_publish, scn)
            self.tracked_total.inc()
        return entry

    # ------------------------------------------------------------------
    # stage hooks (called by the pipeline components)
    # ------------------------------------------------------------------
    def record_generated(self, record) -> None:
        """A record was appended to a primary redo thread's log."""
        series = self._generated_series.get(record.thread)
        if series is None:
            series = self.registry.series(
                "lifecycle.scn.generated", thread=record.thread
            )
            self._generated_series[record.thread] = series
        series.record(self.now, record.scn)
        entry = self._track(record.scn, len(record.cvs))
        if entry is not None:
            self._stamp(entry, "generated", self.now)

    def record_shipped(self, record) -> None:
        entry = self._track(record.scn, len(record.cvs))
        if entry is not None:
            self._stamp(entry, "shipped", self.now)

    def record_received(self, record) -> None:
        entry = self._track(record.scn, len(record.cvs))
        if entry is not None:
            self._stamp(entry, "received", self.now)

    def record_merged(self, record) -> None:
        entry = self._tracked.get(record.scn)
        if entry is not None:
            self._stamp(entry, "merged", self.now)

    def record_applied(self, scn: int) -> None:
        """One CV of the record at ``scn`` was applied; the stage stamps
        when the record's last CV lands (cluster-wide exactly-once under
        MIRA's filtered distribution)."""
        entry = self._tracked.get(scn)
        if entry is None:
            return
        entry.cvs_to_apply -= 1
        if entry.cvs_to_apply <= 0:
            self._stamp(entry, "applied", self.now)

    def record_mined(self, scn: int) -> None:
        """One CV of the record at ``scn`` was successfully sniffed."""
        entry = self._tracked.get(scn)
        if entry is None:
            return
        entry.cvs_to_mine -= 1
        if entry.cvs_to_mine <= 0:
            self._stamp(entry, "mined", self.now)

    def record_chopped(self, commit_scn: int) -> None:
        """A commit-table node entered a worklink."""
        entry = self._tracked.get(commit_scn)
        if entry is not None:
            self._stamp(entry, "chopped", self.now)

    def record_flushed(self, commit_scn: int) -> None:
        """A worklink node's invalidation groups were routed to SMUs."""
        entry = self._tracked.get(commit_scn)
        if entry is not None:
            self._stamp(entry, "flushed", self.now)

    def record_published(self, scn: int) -> None:
        """A QuerySCN publication: covers every tracked record <= scn."""
        now = self.now
        if scn > self._last_published:
            self.published_series.record(now, scn)
            self._last_published = scn
        while self._awaiting_publish and self._awaiting_publish[0] <= scn:
            covered = heapq.heappop(self._awaiting_publish)
            entry = self._tracked.pop(covered, None)
            if entry is None:
                continue
            self._stamp(entry, "published", now)
            start = None
            for stage in STAGES:
                if stage in entry.stamps:
                    start = entry.stamps[stage]
                    break
            if start is not None:
                lag = now - start
                self.visibility_lag.observe(lag)
                self.lag_series.record(now, lag)
            self.completed_total.inc()

    # ------------------------------------------------------------------
    # Fig. 11 reproduction from instruments alone
    # ------------------------------------------------------------------
    def generated_series(self, thread: int):
        """The ``lifecycle.scn.generated`` series for one redo thread."""
        return self._generated_series.get(thread)

    def scn_gap_at(self, t: float, thread: Optional[int] = None) -> float:
        """Generated-vs-published SCN gap at time ``t`` (one thread, or
        the max over threads): the Fig. 11 lag read from instruments."""
        published = self.published_series.value_at(t)
        if thread is not None:
            series = self._generated_series.get(thread)
            generated = series.value_at(t) if series is not None else 0.0
            return max(0.0, generated - published)
        generated = max(
            (s.value_at(t) for s in self._generated_series.values()),
            default=0.0,
        )
        return max(0.0, generated - published)

    def worst_scn_gap(self, after: float = 0.0) -> float:
        """Peak generated-vs-published gap over every generation sample
        at or after ``after`` (warm-up exclusion, as in the Fig. 11
        bench)."""
        worst = 0.0
        for series in self._generated_series.values():
            for t, generated in series.points:
                if t < after:
                    continue
                gap = generated - self.published_series.value_at(t)
                if gap > worst:
                    worst = gap
        return worst

    def stage_summary(self) -> dict[str, dict]:
        """Per-stage histogram statistics, in stage order."""
        return {
            stage: self._stage_hist[stage].stats() for stage in STAGES[1:]
        }
