"""CLI: run a short scenario and pretty-print its metrics snapshot.

    python -m repro.obs                                # chaos 'baseline'
    python -m repro.obs --scenario fal_gap_storm --seed 3
    python -m repro.obs --json results/BENCH_obs_snapshot.json

Reuses the chaos harness's deterministic scenarios as the driver: the
harness builds the deployment under a collecting registry (with the redo
lifecycle tracer attached), so the printed snapshot is the full
instrument set -- pipeline counters plus per-stage lifecycle histograms.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.chaos.harness import ChaosHarness
from repro.chaos.scenarios import SCENARIOS, get_scenario


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="render the metrics snapshot of one scenario run",
    )
    parser.add_argument(
        "--scenario", default="baseline",
        help="chaos scenario to drive (known: %s)" % ", ".join(
            sorted(SCENARIOS)
        ),
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the snapshot as JSON to PATH",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the rendered snapshot (verdict line only)",
    )
    args = parser.parse_args(argv)

    try:
        scenario = get_scenario(args.scenario)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    report = ChaosHarness(scenario, seed=args.seed).run()
    snapshot = report.metrics
    if snapshot is None:  # pragma: no cover - harness always collects
        print("scenario produced no metrics snapshot", file=sys.stderr)
        return 1
    if not args.quiet:
        print(snapshot.to_text())
    if args.json:
        path = pathlib.Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(snapshot.to_json() + "\n")
        print(f"[snapshot saved to {path}]")
    lifecycle_completed = snapshot.total("lifecycle.completed")
    print(
        f"{args.scenario}: {len(snapshot)} instruments, "
        f"{int(lifecycle_completed)} redo records traced end-to-end, "
        f"verdict {'PASS' if report.passed else 'FAIL'}"
    )
    return 0 if report.passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
