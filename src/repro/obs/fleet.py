"""Per-member fleet lag sampling (the paper's Fig. 11, one line per
standby).

:class:`FleetLagSampler` is a scheduler actor that periodically records
each mounted member's published-QuerySCN lag into an ``obs`` time series
(``fleet.member.lag_series{member=...}``) and refreshes the
``fleet.member.lag_scns`` gauges, so a metrics snapshot taken at any
point shows where every member of the reader farm stands.

The fleet object is duck-typed: anything with ``members`` (each having
``name``, ``mounted``, ``set_lag``) and ``member_lag(member)`` works.
"""

from __future__ import annotations

from typing import Optional

from repro import obs
from repro.sim.scheduler import Actor, Scheduler


class FleetLagSampler(Actor):
    """Samples per-member published-QuerySCN lag on a fixed interval."""

    def __init__(self, fleet, interval: float = 0.05) -> None:
        self.fleet = fleet
        self.interval = interval
        self.name = "fleet-lag-sampler"
        self.node = None
        self.series = {
            member.name: obs.series(
                "fleet.member.lag_series", member=member.name
            )
            for member in fleet.members
        }

    def step(self, sched: Scheduler) -> Optional[float]:
        now = sched.now
        for member in self.fleet.members:
            if not member.mounted:
                continue
            lag = self.fleet.member_lag(member)
            member.set_lag(lag)
            self.series[member.name].record(now, lag)
        return self.interval


__all__ = ["FleetLagSampler"]
