"""Population checkpoints for instant standby restart.

The IMCS "has no persistent footprint other than the underlying row-store
objects" (paper, III-E), so a standby bounce forfeits every IMCU and the
restart protocol falls back to coarse invalidation plus full repopulation.
This module removes the repopulation from the restart path: at published
QuerySCNs a background writer snapshots each live IMCU's encoded column
buffers (via :func:`repro.imcs.compression.export_cu` -- the IMCU is
immutable, so the buffers are *referenced*, not copied) together with a
*copy* of its SMU validity mask, into a small versioned store.

Every :class:`ObjectCheckpoint` additionally records the **redo-tail
floor** valid at its capture instant::

    tail_start = min(QuerySCN + 1, min over live journal anchors of
                     the anchor's first mined CV SCN)

Capture runs under the shared quiesce lock after a publication, so every
CV with SCN <= QuerySCN has been applied and mined before capture.  A
transaction not yet flushed at capture therefore has a live anchor whose
``first_scn`` bounds all of its redo from below; re-mining everything from
``tail_start`` at restart (see :mod:`repro.restart.replay`) provably
recreates all journal/commit-table state the bounce destroyed.

Checkpoints are only sound for restarts within the same instance
incarnation: a restart clears the journal, breaking the anchor-liveness
argument above, so the store is cleared whenever the instance restarts
(the instant path consumes its checkpoint first) and whenever a coarse
invalidation or DDL drop supersedes the captured masks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro import obs
from repro.chaos import sites
from repro.common.ids import DBA, ObjectId, RowId, TenantId
from repro.common.scn import SCN
from repro.dbim_adg.flush import InvalidationListener
from repro.imcs.compression import export_cu
from repro.imcs.imcu import IMCU
from repro.imcs.smu import SMU
from repro.sim.cpu import CpuNode
from repro.sim.scheduler import Actor, Scheduler

if TYPE_CHECKING:
    from repro.db.standby import StandbyDatabase

#: Simulated CPU seconds to checkpoint one row (mask copy + bookkeeping;
#: the column buffers are referenced, not copied).
CHECKPOINT_COST_PER_ROW = 5e-8


@dataclass(slots=True)
class UnitCheckpoint:
    """One IMCU/SMU pair, ready for zero-copy rebuild."""

    snapshot_scn: SCN
    rowids: list[RowId]
    captured_slots: dict[DBA, int]
    #: column name -> export_cu() description (kind, arrays, meta).
    columns: dict[str, tuple]
    n_rows: int
    #: SMU validity at capture (the mask is an owned copy).
    invalid_rows: np.ndarray
    invalid_blocks: frozenset[DBA]
    fully_invalid: bool
    last_invalidation_scn: SCN

    @classmethod
    def capture(cls, smu: SMU) -> "UnitCheckpoint":
        imcu = smu.imcu
        rows, blocks, full, scn = smu.snapshot_validity()
        return cls(
            snapshot_scn=imcu.snapshot_scn,
            rowids=imcu.rowids,
            captured_slots=imcu.captured_slots,
            columns={
                name: export_cu(imcu.column(name))
                for name in imcu.column_names
            },
            n_rows=imcu.n_rows,
            invalid_rows=rows,
            invalid_blocks=blocks,
            fully_invalid=full,
            last_invalidation_scn=scn,
        )


@dataclass(slots=True)
class ObjectCheckpoint:
    """All of one object's units, captured at one published QuerySCN."""

    object_id: ObjectId
    tenant: TenantId
    #: The published QuerySCN the SMU masks are consistent with: every
    #: commit with commitSCN <= query_scn is reflected in the masks.
    query_scn: SCN
    #: Redo-tail replay floor valid at capture (see module docstring).
    tail_start_scn: SCN
    units: list[UnitCheckpoint] = field(default_factory=list)

    @property
    def n_rows(self) -> int:
        return sum(unit.n_rows for unit in self.units)


class CheckpointStore(InvalidationListener):
    """Versioned per-object checkpoint registry.

    Installed as an invalidation listener on the flush component:
    a coarse (tenant-wide) invalidation or a DDL drop means the captured
    masks no longer cover reality, so the affected checkpoints are
    discarded rather than risk restoring stale data.
    """

    def __init__(self, keep_versions: int = 2) -> None:
        if keep_versions < 1:
            raise ValueError("need to keep at least one checkpoint version")
        self.keep_versions = keep_versions
        self._by_object: dict[ObjectId, list[ObjectCheckpoint]] = {}
        self.captures = 0
        self.discards = 0

    def put(self, checkpoint: ObjectCheckpoint) -> None:
        versions = self._by_object.setdefault(checkpoint.object_id, [])
        versions.append(checkpoint)
        if len(versions) > self.keep_versions:
            del versions[: len(versions) - self.keep_versions]
        self.captures += 1

    def latest(self, object_id: ObjectId) -> Optional[ObjectCheckpoint]:
        versions = self._by_object.get(object_id)
        return versions[-1] if versions else None

    def drop_object(self, object_id: ObjectId) -> None:
        if self._by_object.pop(object_id, None) is not None:
            self.discards += 1

    def drop_tenant(self, tenant: TenantId) -> None:
        stale = [
            object_id
            for object_id, versions in self._by_object.items()
            if versions and versions[-1].tenant == tenant
        ]
        for object_id in stale:
            self.drop_object(object_id)

    def clear(self) -> None:
        self._by_object.clear()

    @property
    def checkpointed_objects(self) -> int:
        return len(self._by_object)

    # ------------------------------------------------------------------
    # InvalidationListener (fired during flush, pre-publication)
    # ------------------------------------------------------------------
    def on_coarse_invalidation(self, tenant: TenantId, scn: SCN) -> None:
        # The per-row detail the masks rely on is gone for this tenant.
        self.drop_tenant(tenant)

    def on_object_dropped(self, object_id: ObjectId, scn: SCN) -> None:
        # DDL changed the object's definition; the captured buffers are
        # for the old shape.
        self.drop_object(object_id)


class CheckpointWriter(Actor):
    """Background actor snapshotting one object per step.

    After each interval with a newer published QuerySCN than the last
    capture round, the writer walks the enabled objects round-robin, one
    object per step, capturing its live units under the shared quiesce
    lock (so the masks stay consistent with the published QuerySCN and
    the journal floor read is race-free).
    """

    captures = obs.view("_captures")
    chaos_skips = obs.view("_chaos_skips")

    def __init__(
        self,
        standby: "StandbyDatabase",
        store: CheckpointStore,
        interval: float = 0.2,
        name: str = "checkpoint-writer",
        node: Optional[CpuNode] = None,
    ) -> None:
        self.standby = standby
        self.store = store
        self.interval = interval
        self.name = name
        self.node = node
        self._pending: list[ObjectId] = []
        self._round_scn: SCN = 0
        self._last_round = -1.0
        self._captures = obs.counter("restart.checkpoint.captures")
        self._chaos_skips = obs.counter("restart.checkpoint.chaos_skips")
        self._chaos = sites.declare("restart.checkpoint", owner=self)

    def step(self, sched: Scheduler) -> Optional[float]:
        if not self._pending:
            if sched.now - self._last_round < self.interval:
                return None
            published = self.standby.query_scn.value
            if published == 0 or published == self._round_scn:
                return None
            self._last_round = sched.now
            self._round_scn = published
            self._pending = sorted(self.standby.imcs.enabled_object_ids)
            if not self._pending:
                return None
        object_id = self._pending.pop()
        return self._capture_object(object_id)

    def _capture_object(self, object_id: ObjectId) -> Optional[float]:
        chaos = self._chaos
        if chaos.injectors is not None:
            decision = chaos.consult("capture", object=object_id)
            if decision.action in (sites.Action.STALL, sites.Action.DELAY):
                # hold the capture; this object is simply skipped this round
                self._chaos_skips.inc()
                return CHECKPOINT_COST_PER_ROW
            if decision.action is sites.Action.DROP:
                self._chaos_skips.inc()
                return CHECKPOINT_COST_PER_ROW
        standby = self.standby
        if not standby.imcs.is_enabled(object_id):
            return None  # disabled while queued
        if not standby.quiesce_lock.try_acquire_shared(self):
            # publication in progress; retry this object next step
            self._pending.append(object_id)
            return None
        try:
            query_scn = standby.query_scn.value
            if query_scn == 0:
                return None
            floor = standby.journal.min_first_scn()
            tail_start = (
                query_scn + 1 if floor == 0 else min(query_scn + 1, floor)
            )
            segment = standby.imcs.segment(object_id)
            units = [
                UnitCheckpoint.capture(smu)
                for smu in segment.live_units()
                if not smu.fully_invalid
            ]
            if not units:
                return None
            checkpoint = ObjectCheckpoint(
                object_id=object_id,
                tenant=segment.tenant,
                query_scn=query_scn,
                tail_start_scn=tail_start,
                units=units,
            )
        finally:
            standby.quiesce_lock.release_shared(self)
        self.store.put(checkpoint)
        self._captures.inc()
        return CHECKPOINT_COST_PER_ROW * max(checkpoint.n_rows, 1)


def rebuild_imcu(
    object_id: ObjectId, tenant: TenantId, unit: UnitCheckpoint
) -> IMCU:
    """Reconstruct an IMCU from a checkpointed unit (zero-copy over the
    checkpoint's referenced column buffers)."""
    from repro.imcs.compression import cu_from_export

    columns = {
        name: cu_from_export(kind, arrays, meta)
        for name, (kind, arrays, meta) in unit.columns.items()
    }
    return IMCU(
        object_id,
        tenant,
        unit.snapshot_scn,
        unit.rowids,
        unit.captured_slots,
        columns,
        n_rows=unit.n_rows,
    )
