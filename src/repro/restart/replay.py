"""Instant restart: checkpoint restore + dependency-bounded tail replay.

A cold standby restart (paper, III-E) pays twice: every pre-restart commit
re-mined without its 'begin' coarse-invalidates the tenant, and the whole
IMCS repopulates from the row store.  With population checkpoints
(:mod:`repro.restart.checkpoint`) the restart path becomes:

1. abandon any in-flight QuerySCN advancement and clear the volatile
   DBIM-on-ADG structures exactly as a cold restart would;
2. rebuild each checkpointed object's IMCUs zero-copy from the captured
   buffers and seed their SMUs from the captured masks
   (:meth:`~repro.imcs.store.InMemoryColumnStore.restore_unit`);
3. re-mine the **redo tail** -- every already-applied CV with SCN in
   ``[min tail_start over restored objects, max applied SCN]`` that is not
   still queued for apply -- with the miner in ``tail_mode``: a re-mined
   commit whose begin lies below the floor is *provably* covered by the
   checkpointed masks (see the floor derivation in the checkpoint module),
   so it is skipped instead of coarse-invalidating;
4. force one flush advancement to the published QuerySCN so re-mined
   commits at or below it land in the restored masks before any query
   runs; re-mined DDL at or below it re-drops affected units.

Re-mining is idempotent by monotonicity: a record double-mined against a
restored mask only re-marks rows already invalid.  CVs still sitting in
the apply queues are excluded from the tail (identity check against the
queue contents) because the workers will mine them at apply time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.common.config import RestartConfig
from repro.common.scn import SCN
from repro.redo.records import RedoRecord
from repro.restart.checkpoint import CheckpointStore, rebuild_imcu

if TYPE_CHECKING:
    from repro.db.standby import StandbyDatabase

#: (lo_scn, hi_scn) -> every redo record with lo <= scn <= hi, SCN order.
RedoTailFetch = Callable[[SCN, SCN], list[RedoRecord]]

#: Bounded forced-flush drain; beyond this the restored units are coarse-
#: invalidated rather than risking an unbounded restart (chaos stalls).
MAX_FLUSH_ROUNDS = 100_000


@dataclass(slots=True)
class RestartReport:
    """What one restart did, with modeled costs for the benchmark."""

    mode: str = "cold"
    objects_restored: int = 0
    units_restored: int = 0
    rows_restored: int = 0
    tail_start_scn: SCN = 0
    tail_end_scn: SCN = 0
    cvs_remined: int = 0
    cvs_skipped_queued: int = 0
    flush_rounds: int = 0
    coarse_fallback: bool = False
    #: Modeled simulated seconds (restart runs synchronously between
    #: scheduler steps, so its cost is reported rather than scheduled).
    restore_seconds: float = 0.0
    remine_seconds: float = 0.0

    @property
    def modeled_seconds(self) -> float:
        return self.restore_seconds + self.remine_seconds


def restore_checkpoints(
    standby: "StandbyDatabase", store: CheckpointStore, report: RestartReport
) -> SCN:
    """Rebuild warm units for every checkpointed object.

    Returns the tail-replay floor: the minimum ``tail_start_scn`` over the
    restored checkpoints (0 when nothing was restored).  The store is
    consumed -- checkpoints are only valid within the incarnation that
    captured them.
    """
    floor: SCN = 0
    for object_id in sorted(standby.imcs.enabled_object_ids):
        checkpoint = store.latest(object_id)
        if checkpoint is None:
            continue
        for unit in checkpoint.units:
            imcu = rebuild_imcu(object_id, checkpoint.tenant, unit)
            standby.imcs.restore_unit(
                imcu,
                unit.invalid_rows,
                unit.invalid_blocks,
                unit.fully_invalid,
                unit.last_invalidation_scn,
            )
            report.units_restored += 1
            report.rows_restored += unit.n_rows
        report.objects_restored += 1
        if floor == 0 or checkpoint.tail_start_scn < floor:
            floor = checkpoint.tail_start_scn
    store.clear()
    return floor


def replay_tail(
    standby: "StandbyDatabase",
    fetch: RedoTailFetch,
    floor: SCN,
    report: RestartReport,
) -> None:
    """Re-mine the already-applied redo tail into the fresh journal.

    The tail is ``[floor, max worker applied SCN]``; CVs still queued for
    apply are excluded by identity (their mining happens at apply time,
    exactly once).  Mining runs with the miner in ``tail_mode`` so
    missing-begin commits -- whose invalidations the checkpointed masks
    provably cover -- are skipped instead of coarse-invalidating.
    """
    tail_end = max(
        (worker.applied_scn for worker in standby.workers), default=0
    )
    report.tail_start_scn = floor
    report.tail_end_scn = tail_end
    if floor == 0 or tail_end < floor:
        return
    queued = set(map(id, standby.distributor.queued_cvs()))
    miner = standby.miner
    miner.tail_mode = True
    try:
        for record in fetch(floor, tail_end):
            for cv in record.cvs:
                if id(cv) in queued:
                    report.cvs_skipped_queued += 1
                    continue
                # fresh journal, no concurrent actors: a sniff can only
                # miss on a same-step recursive latch edge, which cannot
                # occur here -- but stay defensive and bound the retries.
                for __ in range(3):
                    if miner.sniff(cv, record.scn, 0, _TAIL_OWNER):
                        break
                else:
                    raise AssertionError(
                        "tail replay latch miss on an idle journal"
                    )
                report.cvs_remined += 1
    finally:
        miner.tail_mode = False


class _TailOwner:
    """Latch owner identity for tail-replay mining."""


_TAIL_OWNER = _TailOwner()


def force_flush(standby: "StandbyDatabase", report: RestartReport) -> None:
    """Drain re-mined invalidations at or below the published QuerySCN.

    Queries resume at the surviving published QuerySCN immediately after
    restart, so every re-mined commit it covers must reach the restored
    masks first -- the same pre-publication discipline the advancement
    protocol enforces, run synchronously here.  A drain that cannot make
    progress (chaos stall held across the restart) falls back to coarse
    invalidation of the restored tenants: correctness over warmth.
    """
    target = standby.query_scn.value
    if target == 0:
        return
    flush = standby.flush
    flush.begin_advance(target)
    rounds = 0
    stalled_rounds = 0
    while not flush.is_advance_complete():
        rounds += 1
        flushed = flush.coordinator_flush(64)
        if flushed < 0:
            stalled_rounds += 1
        else:
            stalled_rounds = 0
        if rounds >= MAX_FLUSH_ROUNDS or stalled_rounds >= 1_000:
            report.coarse_fallback = True
            for segment in list(standby.imcs.segments()):
                standby.imcs.invalidate_tenant(segment.tenant, target)
            break
    flush.finish_advance(target)
    report.flush_rounds = rounds


def instant_restart(
    standby: "StandbyDatabase",
    store: CheckpointStore,
    fetch: RedoTailFetch,
    config: RestartConfig,
) -> RestartReport:
    """Run the warm restart path; the caller has already cleared the
    volatile DBIM-on-ADG state (journal, commit table, DDL table, flush,
    units) and reset the coordinator's in-flight advancement."""
    report = RestartReport(mode="instant")
    floor = restore_checkpoints(standby, store, report)
    if report.units_restored == 0:
        report.mode = "cold"
        return report
    replay_tail(standby, fetch, floor, report)
    force_flush(standby, report)
    report.restore_seconds = (
        config.restore_cost_per_row * report.rows_restored
    )
    report.remine_seconds = config.remine_cost_per_cv * report.cvs_remined
    return report
