"""Instant standby restart: checkpointed IMCS population + tail replay."""

from repro.restart.checkpoint import (
    CheckpointStore,
    CheckpointWriter,
    ObjectCheckpoint,
    UnitCheckpoint,
    rebuild_imcu,
)
from repro.restart.replay import (
    RestartReport,
    instant_restart,
)

__all__ = [
    "CheckpointStore",
    "CheckpointWriter",
    "ObjectCheckpoint",
    "UnitCheckpoint",
    "RestartReport",
    "instant_restart",
    "rebuild_imcu",
]
