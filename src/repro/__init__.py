"""repro: Oracle Database In-Memory on Active Data Guard, reproduced.

A from-scratch implementation of the system described in "Oracle Database
In-Memory on Active Data Guard: Real-time Analytics on a Standby Database"
(Pendse et al., ICDE 2020), built as a deterministic, laptop-scale Python
database stack.

Start here::

    from repro.db import Deployment, TableDef, ColumnDef, InMemoryService
    from repro.imcs import Predicate

    deployment = Deployment.build()
    deployment.create_table(TableDef("T", (ColumnDef.number("id"),)))
    ...

Package layout (see DESIGN.md for the full inventory):

- :mod:`repro.db` -- public façades: Deployment, PrimaryDatabase,
  StandbyDatabase, sessions/services, the mini SQL dialect.
- :mod:`repro.imcs` -- the In-Memory Column Store: IMCUs, SMUs,
  population, the scan engine, expressions, join groups, external tables.
- :mod:`repro.dbim_adg` -- the paper's contribution: mining, the IM-ADG
  Journal and Commit Table, invalidation flush.
- :mod:`repro.adg` -- parallel redo apply, QuerySCN, recovery coordinator.
- :mod:`repro.rac` -- SIRA standby clusters and MIRA (multi-instance
  redo apply).
- :mod:`repro.rowstore`, :mod:`repro.txn`, :mod:`repro.redo` -- the
  row-format substrate: blocks, MVCC/consistent read, transactions, redo.
- :mod:`repro.workload`, :mod:`repro.metrics`, :mod:`repro.sim` -- the
  OLTAP benchmark kit, measurement utilities and the deterministic
  discrete-event scheduler everything runs on.
"""

__version__ = "1.0.0"

__all__ = [
    "adg",
    "common",
    "db",
    "dbim_adg",
    "imcs",
    "metrics",
    "rac",
    "redo",
    "rowstore",
    "sim",
    "txn",
    "workload",
]
