"""CDC egress: the standby as a snapshot-equivalent streaming source.

Quickstart (see README / DESIGN.md section 16)::

    deployment.enable_inmemory("T", service=InMemoryService.STANDBY)
    egress = deployment.start_cdc(tables=["T"])
    replica = ReplaySubscriber()
    egress.subscribe(replica, name="replica")
    ...DML on the primary...
    deployment.catch_up()
    deployment.sched.run_until_condition(lambda: egress.drained)
    assert replica.rows("T") == sorted(deployment.standby.query("T").rows)
"""

from repro.cdc.backfill import BackfillEngine, BackfillState
from repro.cdc.egress import CDCEgress, CDCPump, Subscription
from repro.cdc.events import (
    BACKFILL,
    DELETE,
    DROP,
    LIVE,
    RESYNC,
    UPSERT,
    ChangeEvent,
)
from repro.cdc.subscribers import CollectingSubscriber, ReplaySubscriber

__all__ = [
    "BackfillEngine",
    "BackfillState",
    "CDCEgress",
    "CDCPump",
    "Subscription",
    "ChangeEvent",
    "ReplaySubscriber",
    "CollectingSubscriber",
    "UPSERT",
    "DELETE",
    "RESYNC",
    "DROP",
    "LIVE",
    "BACKFILL",
]
