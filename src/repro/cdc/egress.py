"""The CDC egress: a snapshot-equivalent change feed off the standby.

The egress turns the DBIM-on-ADG machinery the standby already runs into
a streaming source, without touching the primary:

* it registers as an :class:`~repro.dbim_adg.flush.InvalidationListener`
  and tails the mined invalidation stream -- every flushed group hands
  it the exact (object, block, slots) addresses a committed transaction
  touched, strictly *before* the covering QuerySCN publishes;
* it subscribes to the :class:`~repro.adg.queryscn.QuerySCNPublisher`:
  at each publication S (inside the quiesce window, so population and
  later publications are excluded) it resolves the accumulated addresses
  through Consistent Read at S -- a visible row image becomes an UPSERT,
  a tombstone/absent slot a DELETE.  Every publication is therefore a
  **certified cut**: the feed's events at S are exactly the rows visible
  at S.

Because mining only journals IMCS-enabled objects, the feed covers
in-memory-enabled tables -- :meth:`CDCEgress.capture` enforces that.

Delivery is asynchronous: events queue per subscriber and the
:class:`CDCPump` actor drains them with simulated cost (the ``cdc.emit``
chaos site injects subscriber lag).  Mid-stream attachment uses the
DBLog-style chunked backfill in :mod:`repro.cdc.backfill`.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import TYPE_CHECKING, Optional

from repro import obs
from repro.chaos import sites
from repro.common.errors import NotInMemoryError
from repro.common.ids import DBA, ObjectId, RowId, TenantId
from repro.common.scn import SCN
from repro.cdc.backfill import BackfillEngine, BackfillState
from repro.cdc.events import (
    BACKFILL,
    DELETE,
    DROP,
    LIVE,
    RESYNC,
    UPSERT,
    ChangeEvent,
)
from repro.dbim_adg.flush import InvalidationGroup, InvalidationListener
from repro.rowstore.cr import visible_values
from repro.sim.cpu import CpuNode
from repro.sim.scheduler import Actor, Scheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.standby import StandbyDatabase


class Subscription:
    """One subscriber's FIFO of undelivered events."""

    def __init__(self, name: str, target) -> None:
        self.name = name
        self.target = target
        #: (event, enqueued_at) pairs awaiting delivery.
        self.queue: deque[tuple[ChangeEvent, float]] = deque()
        #: Chaos DELAY holds delivery until this simulated time.
        self.resume_at = 0.0
        self.delivered = 0
        self._lag_series = obs.series("cdc.subscriber_lag", subscriber=name)

    @property
    def depth(self) -> int:
        return len(self.queue)


class CDCEgress(InvalidationListener):
    """Tails the invalidation stream; emits a certified change feed."""

    emitted = obs.view("_emitted")
    resolved = obs.view("_resolved")
    resyncs = obs.view("_resyncs")
    backfill_rows = obs.view("_backfill_rows")
    backfill_deduped = obs.view("_backfill_deduped")
    backfill_chunks = obs.view("_backfill_chunks")

    def __init__(
        self, standby: "StandbyDatabase", sched: Scheduler
    ) -> None:
        self.standby = standby
        self.sched = sched
        #: object id -> table name for every captured object (the name
        #: survives a DROP so the drop event can still be addressed).
        self._captured: dict[ObjectId, str] = {}
        #: Addresses touched since the last certified cut:
        #: object -> {dba -> slot set, or None for the whole block}.
        self._pending: dict[ObjectId, dict[DBA, Optional[set[int]]]] = {}
        #: Objects needing a full resync at the next cut (DDL, coarse).
        self._pending_resync: "OrderedDict[ObjectId, None]" = OrderedDict()
        self._subscriptions: list[Subscription] = []
        #: object id -> BackfillState, processed head-first.
        self._backfills: "OrderedDict[ObjectId, BackfillState]" = (
            OrderedDict()
        )
        self.backfill_engine = BackfillEngine(self)
        self._emitted = obs.counter("cdc.emitted")
        self._resolved = obs.counter("cdc.resolved")
        self._resyncs = obs.counter("cdc.resyncs")
        self._backfill_rows = obs.counter("cdc.backfill_rows")
        self._backfill_deduped = obs.counter("cdc.backfill_deduped")
        self._backfill_chunks = obs.counter("cdc.backfill_chunks")
        self._cut_window = obs.histogram("cdc.cut_window")
        self._lag_hist = obs.histogram("cdc.subscriber_lag")
        self._depth_gauge = obs.gauge("cdc.queue_depth")
        standby.flush.add_invalidation_listener(self)
        standby.query_scn.subscribe(self._on_publish)

    # ------------------------------------------------------------------
    # capture management
    # ------------------------------------------------------------------
    def capture(self, table_name: str, backfill: bool = True) -> list[int]:
        """Start capturing a table's changes (and, by default, backfill
        its existing rows).  The table must be IMCS-enabled on this
        standby: mining only journals invalidations for enabled objects,
        so a non-enabled table would silently produce an empty feed."""
        table = self.standby.catalog.table(table_name)
        object_ids = list(table.object_ids)
        for oid in object_ids:
            if not self.standby.imcs.is_enabled(oid):
                raise NotInMemoryError(
                    f"CDC capture requires {table_name!r} to be in-memory "
                    f"enabled on the standby (object {oid})"
                )
        for oid in object_ids:
            self._captured[oid] = table_name
            if backfill:
                self._backfills[oid] = BackfillState(oid, table_name)
        return object_ids

    @property
    def captured_tables(self) -> set[str]:
        return set(self._captured.values())

    def subscribe(self, target, name: Optional[str] = None) -> Subscription:
        """Attach a subscriber (anything with ``on_event(event)``)."""
        sub = Subscription(
            name or f"subscriber-{len(self._subscriptions)}", target
        )
        self._subscriptions.append(sub)
        return sub

    @property
    def drained(self) -> bool:
        """No unresolved addresses, queued events or running backfills."""
        return (
            not self._pending
            and not self._pending_resync
            and not self._backfills
            and all(not sub.queue for sub in self._subscriptions)
        )

    # ------------------------------------------------------------------
    # InvalidationListener (fires during worklink drain, pre-publication)
    # ------------------------------------------------------------------
    def on_group_flushed(self, group: InvalidationGroup) -> None:
        if group.object_id not in self._captured:
            return
        pending = self._pending.setdefault(group.object_id, {})
        for dba, slots in group.blocks.items():
            if slots == ():
                pending[dba] = None  # whole block
            else:
                existing = pending.get(dba, set())
                if existing is not None:
                    existing.update(slots)
                    pending[dba] = existing

    def on_object_dropped(self, object_id: ObjectId, scn: SCN) -> None:
        if object_id in self._captured:
            self._pending_resync[object_id] = None

    def on_coarse_invalidation(self, tenant: TenantId, scn: SCN) -> None:
        # coarse = "everything below scn may be stale": resync the world
        for oid in self._captured:
            self._pending_resync[oid] = None

    # ------------------------------------------------------------------
    # the certified cut: resolve pending addresses at each publication
    # ------------------------------------------------------------------
    def _on_publish(self, scn: SCN) -> None:
        if not self._pending and not self._pending_resync:
            return
        now = self.sched.now
        events: list[ChangeEvent] = []
        catalog = self.standby.catalog
        # table-level events first: a resync resets downstream state
        # before this cut's row images (if any) land on other tables
        resyncs, self._pending_resync = self._pending_resync, OrderedDict()
        for oid in resyncs:
            name = self._captured.get(oid)
            if name is None:
                continue
            self._pending.pop(oid, None)  # superseded by the resync
            if not catalog.has_object(oid):
                # DDL dropped the object pre-publication (III-D order):
                # end the capture with a DROP event
                events.append(ChangeEvent(DROP, name, oid, scn))
                del self._captured[oid]
                self._backfills.pop(oid, None)
            else:
                events.append(ChangeEvent(RESYNC, name, oid, scn))
                # re-emit the object from scratch (DDL mid-cut restarts
                # the chunk walk; TRUNCATE re-certifies emptiness)
                state = self._backfills.get(oid)
                if state is None:
                    self._backfills[oid] = BackfillState(oid, name)
                else:
                    state.restart()
            self._resyncs.inc()
        pending, self._pending = self._pending, {}
        for oid, blocks in pending.items():
            name = self._captured.get(oid)
            if name is None or not catalog.has_object(oid):
                continue
            table = catalog.table_for_object(oid)
            for dba in sorted(blocks):
                slots = blocks[dba]
                try:
                    block = table._block_for(dba)
                except KeyError:
                    continue
                if slots is None:
                    slot_list = range(block.used_slots)
                else:
                    slot_list = sorted(
                        s for s in slots if s < block.used_slots
                    )
                for slot in slot_list:
                    values = visible_values(
                        block.chain(slot), scn, self.standby.txn_table
                    )
                    rowid = RowId(dba, slot)
                    if values is None:
                        events.append(
                            ChangeEvent(DELETE, name, oid, scn, rowid)
                        )
                    else:
                        events.append(
                            ChangeEvent(
                                UPSERT, name, oid, scn, rowid, values
                            )
                        )
                    self._resolved.inc()
        # open watermark windows record this cut's touched rowids
        for event in events:
            if event.rowid is None:
                continue
            state = self._backfills.get(event.object_id)
            if state is not None and state.window_lw is not None:
                state.touched.add(event.rowid)
        self._enqueue(events, now)

    # ------------------------------------------------------------------
    def _emit_backfill_row(
        self,
        state: BackfillState,
        rowid: RowId,
        values: tuple,
        hw: SCN,
        at_time: float,
    ) -> None:
        self._backfill_rows.inc()
        self._enqueue(
            [
                ChangeEvent(
                    UPSERT,
                    state.table_name,
                    state.object_id,
                    hw,
                    rowid,
                    values,
                    source=BACKFILL,
                )
            ],
            at_time,
        )

    def _enqueue(self, events: list[ChangeEvent], now: float) -> None:
        if not events:
            return
        for sub in self._subscriptions:
            for event in events:
                sub.queue.append((event, now))
        self._depth_gauge.set(
            max((sub.depth for sub in self._subscriptions), default=0)
        )


class CDCPump(Actor):
    """Delivers queued events to subscribers and drives backfills.

    One actor per egress: each step advances the head backfill's chunk
    window and drains up to ``batch`` events per subscriber, charging
    simulated cost per event.  The ``cdc.emit`` chaos site injects
    subscriber lag (STALL skips a round, DELAY parks one subscriber).
    """

    #: Simulated CPU seconds per delivered event.
    COST_PER_EVENT = 5e-7

    def __init__(
        self,
        egress: CDCEgress,
        batch: int = 64,
        node: Optional[CpuNode] = None,
        name: str = "cdc-pump",
    ) -> None:
        self.egress = egress
        self.batch = batch
        self.node = node
        self.name = name
        self._chaos = sites.declare("cdc.emit", owner=self)

    def step(self, sched: Scheduler) -> Optional[float]:
        cost = self.egress.backfill_engine.step(sched.now)
        now = sched.now
        for sub in self.egress._subscriptions:
            if not sub.queue or now < sub.resume_at:
                continue
            if self._chaos.injectors is not None:
                decision = self._chaos.consult(
                    "deliver", subscriber=sub.name, depth=sub.depth
                )
                if decision.action is sites.Action.STALL:
                    continue
                if decision.action is sites.Action.DELAY:
                    sub.resume_at = now + decision.delay
                    continue
            delivered = 0
            while sub.queue and delivered < self.batch:
                event, enqueued_at = sub.queue.popleft()
                lag = now - enqueued_at
                self.egress._lag_hist.observe(lag)
                sub._lag_series.record(now, lag)
                sub.target.on_event(event)
                sub.delivered += 1
                delivered += 1
            self.egress._emitted.inc(delivered)
            cost += self.COST_PER_EVENT * delivered
        self.egress._depth_gauge.set(
            max(
                (s.depth for s in self.egress._subscriptions), default=0
            )
        )
        return cost if cost > 0 else None


__all__ = ["CDCEgress", "CDCPump", "Subscription"]
