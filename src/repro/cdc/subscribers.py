"""Stock subscribers: replay (materialise the feed) and collect (log it).

:class:`ReplaySubscriber` is the equivalence oracle used by the tests
and the chaos scenario: applying the feed in delivery order must
reconstruct, for every captured table, exactly the rows the standby
sees at the latest certified cut it has consumed.
"""

from __future__ import annotations

from repro.cdc.events import DELETE, DROP, RESYNC, UPSERT, ChangeEvent


class ReplaySubscriber:
    """Materialises the change feed into per-table rowid -> values maps."""

    def __init__(self) -> None:
        self.tables: dict[str, dict] = {}
        #: Highest certified cut consumed per table.
        self.cut_scn: dict[str, int] = {}
        self.events_applied = 0

    def on_event(self, event: ChangeEvent) -> None:
        self.events_applied += 1
        self.cut_scn[event.table] = max(
            self.cut_scn.get(event.table, 0), event.scn
        )
        if event.kind == UPSERT:
            self.tables.setdefault(event.table, {})[event.rowid] = (
                event.values
            )
        elif event.kind == DELETE:
            self.tables.get(event.table, {}).pop(event.rowid, None)
        elif event.kind == RESYNC:
            self.tables[event.table] = {}
        elif event.kind == DROP:
            self.tables.pop(event.table, None)
            self.cut_scn.pop(event.table, None)

    def rows(self, table: str) -> list[tuple]:
        """The replayed row set, sorted for comparison against a scan."""
        return sorted(self.tables.get(table, {}).values())


class CollectingSubscriber:
    """Keeps every delivered event, in order (for assertions on shape)."""

    def __init__(self) -> None:
        self.events: list[ChangeEvent] = []

    def on_event(self, event: ChangeEvent) -> None:
        self.events.append(event)


__all__ = ["ReplaySubscriber", "CollectingSubscriber"]
