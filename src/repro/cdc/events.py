"""Change-feed event model.

Every event is stamped with the *certified cut* it belongs to: the
published QuerySCN at which its row image (or absence) was resolved.
Because the egress resolves rows inside the publication's quiesce window,
an event's ``values`` are exactly the row's Consistent Read image at
``scn`` -- the snapshot-equivalence the DBLog-style protocol certifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.ids import ObjectId, RowId
from repro.common.scn import SCN

#: Row-level kinds carry a rowid (and values for upserts); table-level
#: kinds (resync/drop) reset downstream state for the whole table.
UPSERT = "upsert"
DELETE = "delete"
RESYNC = "resync"
DROP = "drop"

#: Where the event came from: the live mined-invalidation path or a
#: chunked backfill select.
LIVE = "live"
BACKFILL = "backfill"


@dataclass(frozen=True, slots=True)
class ChangeEvent:
    """One change-feed entry, certified at QuerySCN ``scn``."""

    kind: str                     # UPSERT / DELETE / RESYNC / DROP
    table: str
    object_id: ObjectId
    scn: SCN                      # the certified cut (published QuerySCN)
    rowid: Optional[RowId] = None
    values: Optional[tuple] = None
    source: str = LIVE            # LIVE / BACKFILL

    def __repr__(self) -> str:
        where = f" {self.rowid}" if self.rowid is not None else ""
        return (
            f"ChangeEvent({self.kind}:{self.source} {self.table}{where} "
            f"@ {self.scn})"
        )


__all__ = [
    "ChangeEvent",
    "UPSERT",
    "DELETE",
    "RESYNC",
    "DROP",
    "LIVE",
    "BACKFILL",
]
