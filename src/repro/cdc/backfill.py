"""DBLog-style chunked backfill with watermark windows (virtual cuts).

A subscriber that attaches mid-stream needs the rows that existed before
the live feed started.  DBLog ("DBLog: A Watermark Based Change-Data-
Capture Framework", Andreou et al.) interleaves chunked full selects
with the live log by bracketing every chunk in a low/high watermark
window:

1. **open** the window: remember the current published QuerySCN as the
   low watermark and start recording which rowids the live path touches;
2. let the live feed run (the window stays open for a simulated hold
   interval -- publications land, live events accumulate);
3. **close** the window: the published QuerySCN *now* is the high
   watermark; select the next chunk of blocks at exactly that SCN via
   Consistent Read, and drop any selected row whose rowid saw a live
   event inside the window -- the live event already carries that row's
   state at an equal-or-newer certified cut, so the chunk row would be a
   stale duplicate.

Because the select is pinned to the high watermark (a *published*
QuerySCN, i.e. a certified cut), every surviving chunk row is exactly
the row's image at that cut -- replaying backfill rows and live events
in feed order reconstructs the table byte-for-byte.

Chunks are physical: a fixed number of data blocks per window, walked in
segment order (the analogue of DBLog's PK-range chunks).  Blocks that
materialise later (tail inserts) are covered by the live path, which is
why backfill requires live capture to already be running.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.chaos import sites
from repro.common.ids import DBA, ObjectId, RowId
from repro.common.scn import SCN
from repro.rowstore.cr import visible_values

if TYPE_CHECKING:  # pragma: no cover
    from repro.cdc.egress import CDCEgress


@dataclass(slots=True)
class BackfillState:
    """Progress of one object's (partition's) chunked backfill."""

    object_id: ObjectId
    table_name: str
    #: Blocks already selected (chunks are block-granular).
    done_dbas: set[DBA] = field(default_factory=set)
    #: Low watermark of the open window, or None when no window is open.
    window_lw: Optional[SCN] = None
    #: Simulated time at which the open window may close.
    window_close_at: float = 0.0
    #: Rowids the live path touched while the window was open.
    touched: set[RowId] = field(default_factory=set)
    chunks_done: int = 0

    def restart(self) -> None:
        """DDL mid-cut: abandon the current window and start over."""
        self.done_dbas.clear()
        self.window_lw = None
        self.touched = set()


class BackfillEngine:
    """Drives the egress's pending backfills, one chunk window at a time.

    Owned by :class:`~repro.cdc.egress.CDCEgress`; stepped by the
    :class:`~repro.cdc.egress.CDCPump` actor.  Only the head backfill
    makes progress per step (DBLog processes one chunk at a time), so
    concurrent backfills queue behind each other.
    """

    #: Simulated seconds a watermark window stays open before the chunk
    #: select runs -- the interleave that lets live events certify cuts.
    window_hold = 0.02
    #: Data blocks selected per chunk window.
    chunk_blocks = 4
    #: Simulated CPU seconds per row visited by a chunk select.
    select_cost_per_row = 1e-6

    def __init__(self, egress: "CDCEgress") -> None:
        self.egress = egress
        self._chaos = sites.declare("cdc.backfill", owner=self)

    # ------------------------------------------------------------------
    def step(self, now: float) -> float:
        """Advance the head backfill; returns simulated cost."""
        egress = self.egress
        while egress._backfills:
            oid = next(iter(egress._backfills))
            if oid in egress._captured:
                break
            del egress._backfills[oid]  # table dropped mid-backfill
        else:
            return 0.0
        state = egress._backfills[oid]
        if state.window_lw is None:
            return self._open_window(state, now)
        if now < state.window_close_at:
            return 0.0  # window interleaving with the live feed
        return self._close_window(state, now)

    # ------------------------------------------------------------------
    def _open_window(self, state: BackfillState, now: float) -> float:
        if self._chaos.injectors is not None:
            decision = self._chaos.consult(
                "open", object=state.object_id, chunk=state.chunks_done
            )
            if decision.action is sites.Action.STALL:
                return 1e-6  # retried next step
            extra = (
                decision.delay
                if decision.action is sites.Action.DELAY else 0.0
            )
        else:
            extra = 0.0
        state.window_lw = self.egress.standby.query_scn.value
        state.touched = set()
        state.window_close_at = now + self.window_hold + extra
        return 1e-6

    # ------------------------------------------------------------------
    def _close_window(self, state: BackfillState, now: float) -> float:
        egress = self.egress
        if self._chaos.injectors is not None:
            decision = self._chaos.consult(
                "close", object=state.object_id, chunk=state.chunks_done
            )
            if decision.action is sites.Action.STALL:
                # chunk select held back: the window simply stays open,
                # accumulating more live-touched rowids
                state.window_close_at = now + self.window_hold
                return 1e-6
            if decision.action is sites.Action.DELAY:
                state.window_close_at = now + decision.delay
                return 1e-6
        standby = egress.standby
        hw = standby.query_scn.value
        table = standby.catalog.table_for_object(state.object_id)
        part = table.partition_by_object_id(state.object_id)
        rows_seen = 0
        blocks_done = 0
        exhausted = True
        for block in part.segment.blocks():
            if block.dba in state.done_dbas:
                continue
            if blocks_done >= self.chunk_blocks:
                exhausted = False
                break
            for slot in range(block.used_slots):
                rows_seen += 1
                values = visible_values(
                    block.chain(slot), hw, standby.txn_table
                )
                if values is None:
                    continue
                rowid = RowId(block.dba, slot)
                if rowid in state.touched:
                    # live wins: this row's state at an >= cut is already
                    # in the feed -- emitting the chunk row would be a
                    # stale duplicate (the DBLog de-dup rule)
                    egress._backfill_deduped.inc()
                    continue
                egress._emit_backfill_row(
                    state, rowid, values, hw, at_time=now
                )
            state.done_dbas.add(block.dba)
            blocks_done += 1
        assert state.window_lw is not None
        egress._cut_window.observe(float(hw - state.window_lw))
        egress._backfill_chunks.inc()
        state.chunks_done += 1
        state.window_lw = None
        state.touched = set()
        if exhausted:
            del egress._backfills[state.object_id]
        return 2e-6 + self.select_cost_per_row * rows_seen


__all__ = ["BackfillState", "BackfillEngine"]
