"""In-Memory Join Groups (paper, section V).

"In-Memory Join Groups can also be created for the Standby database to
make join processing faster."

A join group declares that a set of (table, column) pairs join against
each other.  All member columns are then dictionary-encoded against one
shared, append-only :class:`GlobalDictionary`, so equal values carry equal
integer codes *across tables and IMCUs*.  The join executor exploits this:
rows whose join key lives in the shared dictionary are bucketed by their
integer code (cheap, collision-free int keys instead of string hashing),
and only rows with out-of-dictionary keys -- possible solely on the
row-store reconcile path -- fall back to value-based matching.

Correctness note: a value absent from the shared dictionary cannot appear
in any member IMCU (population encodes through the dictionary, growing
it), so code-keyed and value-keyed rows form disjoint join spaces and the
two-bucket join below is exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.imcs.compression import GlobalDictionary
from repro.imcs.scan import Predicate, ScanEngine
from repro.rowstore.table import Table


@dataclass(frozen=True, slots=True)
class JoinGroupMember:
    table_name: str
    column: str


class JoinGroup:
    """A named set of columns sharing one dictionary."""

    def __init__(self, name: str, members: Sequence[JoinGroupMember]) -> None:
        if len(members) < 2:
            raise ValueError("a join group needs at least two members")
        self.name = name
        self.members = tuple(members)
        self.dictionary = GlobalDictionary()

    def covers(self, table_name: str, column: str) -> bool:
        return JoinGroupMember(table_name, column) in self.members


class JoinGroupRegistry:
    """Join groups of one database instance."""

    def __init__(self) -> None:
        self._groups: dict[str, JoinGroup] = {}

    def create(self, name: str, members: Sequence[JoinGroupMember]) -> JoinGroup:
        if name in self._groups:
            raise ValueError(f"join group {name!r} already exists")
        group = JoinGroup(name, members)
        self._groups[name] = group
        return group

    def get(self, name: str) -> JoinGroup:
        return self._groups[name]

    def group_covering(
        self, table_a: str, column_a: str, table_b: str, column_b: str
    ) -> Optional[JoinGroup]:
        for group in self._groups.values():
            if group.covers(table_a, column_a) and group.covers(table_b, column_b):
                return group
        return None

    def dictionary_for(self, table_name: str, column: str) -> Optional[GlobalDictionary]:
        for group in self._groups.values():
            if group.covers(table_name, column):
                return group.dictionary
        return None


# ----------------------------------------------------------------------
@dataclass(slots=True)
class JoinStats:
    code_path_rows: int = 0   # joined via shared-dictionary codes
    value_path_rows: int = 0  # joined via raw values (reconcile rows)
    used_join_group: bool = False
    cost_seconds: float = 0.0


@dataclass(slots=True)
class JoinResult:
    rows: list[tuple] = field(default_factory=list)
    stats: JoinStats = field(default_factory=JoinStats)


class JoinExecutor:
    """Inner equi-join of two tables through the IMCS.

    Build side = ``table_a``; probe side = ``table_b``.  Output tuples are
    ``columns_a + columns_b``.  When a join group covers both columns the
    IMCS-resident rows join on integer codes.
    """

    def __init__(
        self,
        scan_engine: ScanEngine,
        registry: Optional[JoinGroupRegistry] = None,
    ) -> None:
        self.scan_engine = scan_engine
        self.registry = registry

    # ------------------------------------------------------------------
    def join(
        self,
        table_a: Table,
        column_a: str,
        table_b: Table,
        column_b: str,
        snapshot_scn: int,
        predicates_a: Optional[list[Predicate]] = None,
        predicates_b: Optional[list[Predicate]] = None,
        columns_a: Optional[list[str]] = None,
        columns_b: Optional[list[str]] = None,
    ) -> JoinResult:
        names_a = columns_a or [c.name for c in table_a.schema.live_columns]
        names_b = columns_b or [c.name for c in table_b.schema.live_columns]
        group = (
            self.registry.group_covering(
                table_a.name, column_a, table_b.name, column_b
            )
            if self.registry is not None
            else None
        )
        result = JoinResult()
        result.stats.used_join_group = group is not None

        build_codes, build_values = self._gather_side(
            table_a, column_a, snapshot_scn, predicates_a, names_a,
            group, result.stats,
        )
        probe_codes, probe_values = self._gather_side(
            table_b, column_b, snapshot_scn, predicates_b, names_b,
            group, result.stats,
        )

        by_code: dict[int, list[tuple]] = {}
        for code, row in build_codes:
            by_code.setdefault(code, []).append(row)
        by_value: dict[object, list[tuple]] = {}
        for value, row in build_values:
            by_value.setdefault(value, []).append(row)

        for code, row_b in probe_codes:
            for row_a in by_code.get(code, ()):
                result.rows.append(row_a + row_b)
                result.stats.code_path_rows += 1
        for value, row_b in probe_values:
            for row_a in by_value.get(value, ()):
                result.rows.append(row_a + row_b)
                result.stats.value_path_rows += 1
        return result

    # ------------------------------------------------------------------
    def _gather_side(
        self, table, join_column, snapshot_scn, predicates, names,
        group: Optional[JoinGroup], stats: JoinStats,
    ):
        """Collect (code, projected row) and (value, projected row) pairs.

        With a join group, IMCS-resident valid rows come out code-keyed;
        everything else (reconcile rows, unpopulated blocks, no group)
        comes out keyed by the join value -- translated to its code when
        the dictionary already knows it, so code- and value-origin rows
        still meet.
        """
        wanted = list(dict.fromkeys([join_column] + names))
        scan = self.scan_engine.scan(
            table, snapshot_scn, predicates, columns=wanted
        )
        stats.cost_seconds += scan.stats.cost_seconds
        join_index = wanted.index(join_column)
        project = [wanted.index(n) for n in names]
        code_rows = []
        value_rows = []
        for row in scan.rows:
            key = row[join_index]
            if key is None:
                continue  # NULL never joins
            projected = tuple(row[i] for i in project)
            if group is not None and isinstance(key, str):
                code = group.dictionary.lookup(key)
                if code is not None:
                    code_rows.append((code, projected))
                    continue
            value_rows.append((key, projected))
        return code_rows, value_rows
