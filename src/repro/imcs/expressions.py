"""In-Memory Expressions (paper, section V).

"In-Memory Expressions [Mishra et al., VLDB'16] are now supported on the
Standby database and provide even faster performance for complex,
analytical expressions used in reporting queries."

An expression is a named, deterministic function over a row's columns.
When an object with registered expressions is (re)populated, the
expression's values are *materialised* as an extra column CU inside each
IMCU -- so scans can filter and project on the expression at columnar
speed instead of recomputing it per row.  Rows served through the
row-store reconcile path compute the expression on the fly, preserving
exact consistency.

Expressions are registered per database side (they are derived data with
no redo footprint, like the IMCUs themselves); registering one drops the
object's existing IMCUs so repopulation can materialise it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.rowstore.values import Schema


@dataclass(frozen=True, slots=True)
class Expression:
    """A named virtual column.

    ``fn`` receives the input column values (in ``inputs`` order) and
    returns the expression value; it must be deterministic and total
    (return None for NULL-ish results rather than raising).
    ``is_numeric`` selects the columnar encoding of the materialised CU.
    """

    name: str
    inputs: tuple[str, ...]
    fn: Callable
    is_numeric: bool = True

    def evaluate(self, values: tuple, schema: Schema) -> object:
        args = [values[schema.column_index(c)] for c in self.inputs]
        return self.fn(*args)


class ExpressionSet:
    """The expressions registered for one in-memory object."""

    def __init__(self) -> None:
        self._expressions: dict[str, Expression] = {}

    def add(self, expression: Expression) -> None:
        if expression.name in self._expressions:
            raise ValueError(
                f"expression {expression.name!r} already registered"
            )
        self._expressions[expression.name] = expression

    def get(self, name: str) -> Optional[Expression]:
        return self._expressions.get(name)

    def names(self) -> list[str]:
        return list(self._expressions)

    def __len__(self) -> int:
        return len(self._expressions)

    def __iter__(self):
        return iter(self._expressions.values())


def materialise_columns(
    expressions: Sequence[Expression],
    rows: list[tuple],
    schema: Schema,
) -> dict[str, list]:
    """Evaluate each expression over all rows (population-time path)."""
    out: dict[str, list] = {}
    for expression in expressions:
        out[expression.name] = [
            expression.evaluate(values, schema) for values in rows
        ]
    return out


class RowResolver:
    """Resolves a column-or-expression name to a value for one row tuple.

    Used by the scan engine on the row-store reconcile path, where
    expression values are not materialised and must be computed.
    """

    def __init__(
        self, schema: Schema, expressions: Optional[ExpressionSet] = None
    ) -> None:
        self.schema = schema
        self.expressions = expressions

    def is_expression(self, name: str) -> bool:
        return (
            self.expressions is not None
            and self.expressions.get(name) is not None
        )

    def value(self, values: tuple, name: str) -> object:
        if self.expressions is not None:
            expression = self.expressions.get(name)
            if expression is not None:
                return expression.evaluate(values, self.schema)
        return values[self.schema.column_index(name)]

    def project(self, values: tuple, names: list[str]) -> tuple:
        return tuple(self.value(values, name) for name in names)
