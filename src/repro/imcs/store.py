"""The In-Memory Column Store: pool, registry and invalidation routing.

One :class:`InMemoryColumnStore` exists per database instance.  Objects
(table partitions) are *enabled* for in-memory, then background population
builds IMCU/SMU pairs covering their DBA ranges (see ``population.py``).

A critical interlock lives here.  Population and invalidation run
concurrently, so an invalidation can arrive for a DBA range whose IMCU is
still being built (the paper, III-B: "it is possible that the relevant SMU
has not been created yet").  Invalidations that find no SMU are parked in a
per-object *pending* list; when a unit registers, pending records newer
than its snapshot SCN are applied to the fresh SMU before it becomes
scannable.  Records at or below the snapshot are already reflected in the
IMCU's data (population reads through Consistent Read) -- applying only the
newer ones keeps invalidation minimal, and applying too many would still be
safe (invalidation is monotone).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro import obs
from repro.common.errors import NotInMemoryError
from repro.common.ids import DBA, ObjectId, TenantId
from repro.common.scn import SCN
from repro.imcs.compression import GlobalDictionary
from repro.imcs.expressions import Expression, ExpressionSet
from repro.imcs.imcu import IMCU
from repro.imcs.smu import SMU
from repro.rowstore.table import Partition, Table


@dataclass(slots=True)
class _PendingInvalidation:
    dba: DBA
    slots: tuple[int, ...]  # empty tuple = whole block
    scn: SCN


@dataclass(slots=True)
class InMemorySegment:
    """In-memory enablement metadata for one object (table partition)."""

    table: Table
    partition: Partition
    inmemory_columns: Optional[list[str]] = None
    priority: int = 0
    units: list[SMU] = field(default_factory=list)
    dba_to_unit: dict[DBA, SMU] = field(default_factory=dict)
    pending: list[_PendingInvalidation] = field(default_factory=list)
    #: In-Memory Expressions materialised into this object's IMCUs.
    expressions: ExpressionSet = field(default_factory=ExpressionSet)
    #: Join-group shared dictionaries, per member column.
    join_dictionaries: dict[str, GlobalDictionary] = field(default_factory=dict)

    @property
    def object_id(self) -> ObjectId:
        return self.partition.object_id

    @property
    def tenant(self) -> TenantId:
        return self.table.tenant

    def live_units(self) -> list[SMU]:
        return [smu for smu in self.units if not smu.dropped]


class InMemoryColumnStore:
    """Registry of enabled objects and their IMCU/SMU pairs."""

    rows_invalidated = obs.view("_rows_invalidated")
    coarse_invalidations = obs.view("_coarse_invalidations")

    def __init__(self, pool_size_bytes: Optional[int] = None) -> None:
        self.pool_size_bytes = pool_size_bytes
        self._segments: dict[ObjectId, InMemorySegment] = {}
        # statistics
        self._rows_invalidated = obs.counter("imcs.rows_invalidated")
        self._coarse_invalidations = obs.counter("imcs.coarse_invalidations")

    # ------------------------------------------------------------------
    # enablement
    # ------------------------------------------------------------------
    def enable(
        self,
        table: Table,
        partition_name: Optional[str] = None,
        columns: Optional[list[str]] = None,
        priority: int = 0,
    ) -> InMemorySegment:
        """Enable one partition (or every partition) for in-memory."""
        names = (
            [partition_name] if partition_name is not None
            else list(table.partitions)
        )
        segment = None
        for name in names:
            partition = table.partition(name)
            segment = InMemorySegment(
                table=table,
                partition=partition,
                inmemory_columns=columns,
                priority=priority,
            )
            self._segments[partition.object_id] = segment
        assert segment is not None
        return segment

    def add_expression(
        self, object_id: ObjectId, expression: Expression
    ) -> None:
        """Register an In-Memory Expression for one object.

        Existing IMCUs lack the materialised column, so they are dropped;
        repopulation rebuilds them with the expression included.
        """
        segment = self.segment(object_id)
        segment.expressions.add(expression)
        self.drop_units(object_id)

    def set_join_dictionary(
        self, object_id: ObjectId, column: str, dictionary: GlobalDictionary
    ) -> None:
        """Encode ``column`` against a join group's shared dictionary.

        Existing IMCUs use per-unit dictionaries, so they are dropped;
        repopulation rebuilds them against the shared dictionary.
        """
        segment = self.segment(object_id)
        segment.join_dictionaries[column] = dictionary
        self.drop_units(object_id)

    def disable(self, object_id: ObjectId) -> None:
        """ALTER ... NO INMEMORY: drop units and forget the object."""
        self.drop_units(object_id)
        self._segments.pop(object_id, None)

    def is_enabled(self, object_id: ObjectId) -> bool:
        return object_id in self._segments

    @property
    def enabled_object_ids(self) -> set[ObjectId]:
        return set(self._segments)

    def segment(self, object_id: ObjectId) -> InMemorySegment:
        try:
            return self._segments[object_id]
        except KeyError:
            raise NotInMemoryError(f"object {object_id} is not in-memory")

    def segments(self) -> Iterator[InMemorySegment]:
        return iter(list(self._segments.values()))

    # ------------------------------------------------------------------
    # unit registration / replacement (population, repopulation)
    # ------------------------------------------------------------------
    def register_unit(self, imcu: IMCU) -> SMU:
        """Install a freshly built IMCU; returns its new SMU.

        Applies pending invalidations newer than the IMCU's snapshot, then
        indexes its DBA coverage (replacing any older unit over the same
        range -- repopulation swap).
        """
        segment = self.segment(imcu.object_id)
        smu = SMU(imcu)
        still_pending = []
        for record in segment.pending:
            if not imcu.covers_dba(record.dba):
                still_pending.append(record)
                continue
            if record.scn > imcu.snapshot_scn:
                self._apply_to_smu(smu, record.dba, record.slots, record.scn)
            # covered + older than snapshot: already in the IMCU's data
        segment.pending = still_pending

        replaced: dict[int, SMU] = {}
        for dba in imcu.covered_dbas:
            old = segment.dba_to_unit.get(dba)
            if old is not None:
                replaced.setdefault(id(old), old)
            segment.dba_to_unit[dba] = smu
        for old in replaced.values():
            self._carry_invalidations(old, smu)
        if replaced:
            segment.units = [
                unit for unit in segment.units if id(unit) not in replaced
            ]
        segment.units.append(smu)
        return smu

    def _carry_invalidations(self, old: SMU, smu: SMU) -> None:
        """Preserve invalidations a repopulation swap would otherwise lose.

        The incoming IMCU was built at a snapshot captured *before* the
        swap; any invalidation the outgoing unit recorded after that
        snapshot describes a change the new data cannot contain.  The SMU
        tracks only a boolean mask plus the highest invalidation SCN, so
        when that SCN exceeds the new snapshot the old unit's mask is
        carried over at its exact granularity -- row-level bits as one
        batched :meth:`SMU.invalidate_slots` call, block-level records as
        whole blocks (they may cover slots the old unit never captured).
        Extra invalid rows merely fall back to the row store, while a
        missed one would serve stale data forever.

        Only a genuinely coarse outgoing unit (``fully_invalid``: the
        per-row detail does not exist) coarse-invalidates the swapped-in
        IMCU; everything else keeps the new population usable under
        concurrent DML.
        """
        if old.last_invalidation_scn <= smu.imcu.snapshot_scn:
            return
        scn = old.last_invalidation_scn
        if old.fully_invalid:
            # No per-row detail survives a coarse invalidation: rows the
            # new IMCU captured beyond the old snapshot could hide changes
            # the coarse event covered, so the whole unit must go.
            smu.invalidate_fully(scn)
            return
        for dba in old.invalid_blocks:
            if smu.imcu.covers_dba(dba):
                smu.invalidate_block(dba, scn)
                self._rows_invalidated.inc()
        batches = [
            (dba, tuple(slots))
            for dba, slots in old.invalid_row_slots().items()
            if smu.imcu.covers_dba(dba)
        ]
        if batches:
            self._rows_invalidated.inc(smu.invalidate_slots(batches, scn))

    def restore_unit(
        self,
        imcu: IMCU,
        invalid_rows,
        invalid_blocks,
        fully_invalid: bool,
        last_invalidation_scn: SCN,
    ) -> SMU:
        """Install a checkpoint-rebuilt IMCU with checkpointed validity
        (instant restart, :mod:`repro.restart`).

        Like :meth:`register_unit`, but the SMU is seeded from the
        checkpoint mask first, and *every* covered pending record is
        applied on top -- a restored unit's data is as-of its original
        population snapshot, so no parked record can be assumed already
        reflected in it.
        """
        segment = self.segment(imcu.object_id)
        smu = SMU(imcu)
        smu.restore_validity(
            invalid_rows, invalid_blocks, fully_invalid,
            last_invalidation_scn,
        )
        still_pending = []
        for record in segment.pending:
            if not imcu.covers_dba(record.dba):
                still_pending.append(record)
                continue
            self._apply_to_smu(smu, record.dba, record.slots, record.scn)
        segment.pending = still_pending

        replaced: dict[int, SMU] = {}
        for dba in imcu.covered_dbas:
            old = segment.dba_to_unit.get(dba)
            if old is not None:
                replaced.setdefault(id(old), old)
            segment.dba_to_unit[dba] = smu
        for old in replaced.values():
            self._carry_invalidations(old, smu)
        if replaced:
            segment.units = [
                unit for unit in segment.units if id(unit) not in replaced
            ]
        segment.units.append(smu)
        return smu

    def drop_units(self, object_id: ObjectId) -> int:
        """Drop every unit of an object (DDL response).  Pinned SMUs are
        marked fully invalid instead (scans in flight fall back)."""
        segment = self._segments.get(object_id)
        if segment is None:
            return 0
        dropped = 0
        for smu in segment.units:
            if smu.pinned:
                smu.invalidate_fully(smu.last_invalidation_scn)
            else:
                smu.mark_dropped()
            dropped += 1
        segment.units = []
        segment.dba_to_unit = {}
        segment.pending = []
        return dropped

    # ------------------------------------------------------------------
    # invalidation routing
    # ------------------------------------------------------------------
    def unit_covering(self, object_id: ObjectId, dba: DBA) -> Optional[SMU]:
        segment = self._segments.get(object_id)
        if segment is None:
            return None
        smu = segment.dba_to_unit.get(dba)
        if smu is not None and smu.dropped:
            return None
        return smu

    def invalidate(
        self,
        object_id: ObjectId,
        dba: DBA,
        slots: tuple[int, ...],
        scn: SCN,
    ) -> None:
        """Mark rows (or, with empty ``slots``, a whole block) invalid.

        If the covering unit does not exist yet the record is parked in the
        object's pending list (see module docstring).
        """
        segment = self._segments.get(object_id)
        if segment is None:
            return  # not enabled here: nothing to maintain
        smu = segment.dba_to_unit.get(dba)
        if smu is None or smu.dropped:
            segment.pending.append(_PendingInvalidation(dba, slots, scn))
            return
        self._apply_to_smu(smu, dba, slots, scn)

    def invalidate_many(
        self,
        object_id: ObjectId,
        blocks: dict[DBA, tuple[int, ...]],
        scn: SCN,
    ) -> None:
        """Apply a whole invalidation group's blocks at one commitSCN.

        Slot-level records for the same SMU are batched into a single
        :meth:`SMU.invalidate_slots` call -- one epoch bump and one mask
        write per SMU instead of one per row, which is what keeps the
        cooperative-flush drain on the QuerySCN critical path O(groups).
        Blocks without a covering unit park in the pending list exactly
        like :meth:`invalidate`.
        """
        segment = self._segments.get(object_id)
        if segment is None:
            return  # not enabled here: nothing to maintain
        dba_to_unit = segment.dba_to_unit
        pending = segment.pending
        batches: dict[int, tuple[SMU, list[tuple[DBA, tuple[int, ...]]]]] = {}
        for dba, slots in blocks.items():
            smu = dba_to_unit.get(dba)
            if smu is None or smu.dropped:
                pending.append(_PendingInvalidation(dba, slots, scn))
            elif not slots:
                smu.invalidate_block(dba, scn)
                self._rows_invalidated.inc()
            else:
                entry = batches.get(id(smu))
                if entry is None:
                    batches[id(smu)] = (smu, [(dba, slots)])
                else:
                    entry[1].append((dba, slots))
        for smu, batch in batches.values():
            self._rows_invalidated.inc(smu.invalidate_slots(batch, scn))

    def _apply_to_smu(
        self, smu: SMU, dba: DBA, slots: tuple[int, ...], scn: SCN
    ) -> None:
        if not slots:
            smu.invalidate_block(dba, scn)
            self._rows_invalidated.inc()
            return
        self._rows_invalidated.inc(smu.invalidate_slots([(dba, slots)], scn))

    def invalidate_object(self, object_id: ObjectId, scn: SCN) -> None:
        segment = self._segments.get(object_id)
        if segment is None:
            return
        for smu in segment.live_units():
            smu.invalidate_fully(scn)
        self._coarse_invalidations.inc()

    def invalidate_tenant(self, tenant: TenantId, scn: SCN) -> int:
        """Coarse invalidation (paper, III-E): every IMCU of a tenant."""
        touched = 0
        for segment in self._segments.values():
            if segment.tenant != tenant:
                continue
            for smu in segment.live_units():
                smu.invalidate_fully(scn)
                touched += 1
        if touched:
            self._coarse_invalidations.inc()
        return touched

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        return sum(
            smu.imcu.memory_bytes
            for segment in self._segments.values()
            for smu in segment.live_units()
        )

    def has_capacity_for(self, extra_bytes: int) -> bool:
        if self.pool_size_bytes is None:
            return True
        return self.used_bytes + extra_bytes <= self.pool_size_bytes

    @property
    def populated_rows(self) -> int:
        return sum(
            smu.imcu.n_rows
            for segment in self._segments.values()
            for smu in segment.live_units()
        )

    def __repr__(self) -> str:
        return (
            f"InMemoryColumnStore(objects={len(self._segments)}, "
            f"rows={self.populated_rows}, bytes={self.used_bytes})"
        )
