"""In-Memory External Tables (paper, section V).

"Data from external sources like Hadoop can be enabled for population in
the IMCS using the In-Memory External Tables feature."

An external table has a schema but no row-store segment: its rows come
from an external *source* (any callable returning an iterable of tuples --
standing in for HDFS files, CSVs, object storage).  Population reads the
source once and builds IMCUs directly; there is no redo, no DML and no
SMU reconciliation -- external data is read-only and refreshed only by an
explicit repopulate.

Because nothing replicates, each database (primary or standby) populates
its external tables locally, which is exactly how the feature reaches the
standby in the paper: the same external source is visible from both sites.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

import numpy as np

from repro.common.errors import InvalidStateError
from repro.common.ids import ObjectId, TenantId
from repro.imcs.compression import ColumnCU, encode_column
from repro.imcs.scan import (
    IMCS_COST_PER_ROW,
    Predicate,
    ScanResult,
)
from repro.rowstore.values import ColumnType, Schema

#: Simulated seconds to fetch one row from the external source.
EXTERNAL_FETCH_COST_PER_ROW = 5e-6

RowSource = Callable[[], Iterable[tuple]]


class ExternalIMCU:
    """A columnar unit holding external rows (no DBAs, no SMU)."""

    def __init__(self, columns: dict[str, ColumnCU], n_rows: int) -> None:
        self._columns = columns
        self.n_rows = n_rows

    def column(self, name: str) -> ColumnCU:
        return self._columns[name]

    def has_column(self, name: str) -> bool:
        return name in self._columns

    @property
    def memory_bytes(self) -> int:
        return sum(cu.memory_bytes for cu in self._columns.values())

    def project_rows(self, positions: np.ndarray, names: list[str]) -> list[tuple]:
        if len(positions) == 0:
            return []
        columns = [self._columns[n].take(positions) for n in names]
        if len(columns) == 1:
            return [(value,) for value in columns[0]]
        return list(zip(*columns))


class ExternalTable:
    """An IMCS-only table fed from an external source."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        source: RowSource,
        object_id: ObjectId = 0,
        tenant: TenantId = 0,
        chunk_rows: int = 4096,
    ) -> None:
        self.name = name
        self.schema = schema
        self.source = source
        self.object_id = object_id
        self.tenant = tenant
        self.chunk_rows = chunk_rows
        self._units: list[ExternalIMCU] = []
        self.populated = False
        self.populations = 0
        self.last_population_cost = 0.0

    # ------------------------------------------------------------------
    def populate(self) -> float:
        """(Re)load the source into columnar units; returns the simulated
        cost.  Rows are validated against the schema as they stream in."""
        units: list[ExternalIMCU] = []
        buffer: list[tuple] = []
        n_rows = 0

        def flush() -> None:
            if not buffer:
                return
            columns = {}
            for i, column in enumerate(self.schema.columns):
                columns[column.name] = encode_column(
                    [row[i] for row in buffer],
                    column.ctype is ColumnType.NUMBER,
                )
            units.append(ExternalIMCU(columns, len(buffer)))
            buffer.clear()

        for row in self.source():
            self.schema.validate_row(row)
            buffer.append(row)
            n_rows += 1
            if len(buffer) >= self.chunk_rows:
                flush()
        flush()
        self._units = units
        self.populated = True
        self.populations += 1
        self.last_population_cost = EXTERNAL_FETCH_COST_PER_ROW * n_rows
        return self.last_population_cost

    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return sum(unit.n_rows for unit in self._units)

    @property
    def memory_bytes(self) -> int:
        return sum(unit.memory_bytes for unit in self._units)

    def scan(
        self,
        predicates: Optional[list[Predicate]] = None,
        columns: Optional[list[str]] = None,
    ) -> ScanResult:
        """Columnar scan over the populated units."""
        if not self.populated:
            raise InvalidStateError(
                f"external table {self.name!r} is not populated"
            )
        predicates = predicates or []
        names = columns or [c.name for c in self.schema.live_columns]
        result = ScanResult()
        for unit in self._units:
            mask = np.ones(unit.n_rows, dtype=bool)
            for predicate in predicates:
                cu = unit.column(predicate.column)
                mask &= _eval_on_cu(predicate, cu)
            positions = np.flatnonzero(mask)
            result.rows.extend(unit.project_rows(positions, names))
            result.stats.imcs_rows += unit.n_rows
            result.stats.imcus_used += 1
            result.stats.cost_seconds += IMCS_COST_PER_ROW * unit.n_rows
        return result


def _eval_on_cu(predicate: Predicate, cu: ColumnCU) -> np.ndarray:
    """Vectorised predicate evaluation against a bare column CU."""
    op = predicate.op
    if op == "=":
        return cu.eq_mask(predicate.value)
    if op == "!=":
        return ~cu.eq_mask(predicate.value) & ~cu.null_mask()
    if op == "<":
        return cu.range_mask(None, predicate.value, hi_inclusive=False)
    if op == "<=":
        return cu.range_mask(None, predicate.value)
    if op == ">":
        return cu.range_mask(predicate.value, None, lo_inclusive=False)
    if op == ">=":
        return cu.range_mask(predicate.value, None)
    if op == "between":
        return cu.range_mask(predicate.value, predicate.value2)
    if op == "is_null":
        return cu.null_mask()
    if op == "is_not_null":
        return ~cu.null_mask()
    raise ValueError(f"unknown predicate op {op!r}")
