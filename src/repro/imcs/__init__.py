"""Oracle Database In-Memory: the dual-format column store.

Implements the DBIM side of the paper (section II-B):

* **IMCUs** -- read-only In-Memory Columnar Units holding a DBA range of a
  segment in compressed, encoded column vectors with min/max storage
  indexes (``imcu.py``, ``compression.py``);
* **SMUs** -- Snapshot Metadata Units tracking the validity of IMCU data at
  block and row granularity (``smu.py``);
* **population / repopulation** -- background construction of IMCUs at a
  snapshot SCN, and refresh when too much of an IMCU has been invalidated
  (``population.py``);
* the **In-Memory Scan Engine** -- vectorised predicate evaluation with
  storage-index pruning, reconciling invalid/missing rows against the row
  store buffer cache (``scan.py``);
* the **IMCS** itself -- the in-memory pool mapping enabled objects to
  their IMCU/SMU pairs (``store.py``);
* the section-V extension features: In-Memory Expressions
  (``expressions.py``), Join Groups (``join_groups.py``) and In-Memory
  External Tables (``external.py``).
"""

from repro.imcs.compression import (
    ColumnCU,
    DictionaryCU,
    NumericCU,
    RunLengthCU,
    encode_column,
)
from repro.imcs.imcu import IMCU
from repro.imcs.smu import SMU
from repro.imcs.store import InMemoryColumnStore, InMemorySegment
from repro.imcs.population import PopulationEngine, PopulationTask
from repro.imcs.scan import Predicate, ScanEngine, ScanResult, ScanStats
from repro.imcs.aggregate import AggregateResult, AggregateSpec, Aggregator
from repro.imcs.expressions import Expression, ExpressionSet, RowResolver
from repro.imcs.external import ExternalTable
from repro.imcs.join_groups import (
    JoinExecutor,
    JoinGroup,
    JoinGroupMember,
    JoinGroupRegistry,
    JoinResult,
)

__all__ = [
    "ColumnCU",
    "NumericCU",
    "DictionaryCU",
    "RunLengthCU",
    "encode_column",
    "IMCU",
    "SMU",
    "InMemoryColumnStore",
    "InMemorySegment",
    "PopulationEngine",
    "PopulationTask",
    "Predicate",
    "ScanEngine",
    "ScanResult",
    "ScanStats",
    "AggregateResult",
    "AggregateSpec",
    "Aggregator",
    "Expression",
    "ExpressionSet",
    "RowResolver",
    "ExternalTable",
    "JoinExecutor",
    "JoinGroup",
    "JoinGroupMember",
    "JoinGroupRegistry",
    "JoinResult",
]
