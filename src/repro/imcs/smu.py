"""Snapshot Metadata Units.

"A Snapshot Metadata Unit (SMU) accompanies each IMCU and tracks the
validity of the data populated in its corresponding IMCU at various levels
of granularity -- block level, row level and column level" (paper, II-B).
The scan engine reconciles the IMCU against its SMU: invalid rows are
served from the row store instead.

SMUs also provide the concurrency control that synchronises scans,
repopulation and drop: a scan pins the SMU; repopulation swaps in a fresh
IMCU only between scans; drop marks the unit unusable.

Invalidation is *monotone*: marking extra rows invalid is always safe
(costs row-store fallback), while missing one would break consistency --
the central invariant the DBIM-on-ADG machinery maintains on the standby.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import InvalidStateError
from repro.common.ids import DBA, RowId
from repro.common.scn import NULL_SCN, SCN
from repro.imcs.imcu import IMCU


class SMU:
    """Validity metadata + concurrency control for one IMCU."""

    def __init__(self, imcu: IMCU) -> None:
        self.imcu = imcu
        self._invalid_rows = np.zeros(imcu.n_rows, dtype=bool)
        self._invalid_blocks: set[DBA] = set()
        #: Columns dropped since population (column-level validity).
        self._invalid_columns: set[str] = set()
        #: Highest SCN at which an invalidation was recorded; repopulation
        #: uses it to pick a snapshot that covers everything invalidated.
        self.last_invalidation_scn: SCN = NULL_SCN
        #: Set when the whole IMCU is unusable (coarse invalidation or a
        #: schema change); scans must fall back to the row store entirely.
        self.fully_invalid = False
        #: Drop state: a dropped unit is never scanned or repopulated.
        self.dropped = False
        #: Scan pin count (concurrency control between scans and drop).
        self._pins = 0
        #: Repopulation bookkeeping.
        self.repopulating = False
        self.last_repopulated_at: float = -1.0

    # ------------------------------------------------------------------
    # invalidation (called under the owner store's latch discipline)
    # ------------------------------------------------------------------
    def invalidate_row(self, rowid: RowId, scn: SCN) -> bool:
        """Mark one row invalid.  Rows not captured by the IMCU (inserted
        after its snapshot) are already row-store-only; marking their block
        as having extra rows is handled via ``captured_slots`` at scan
        time, so they are ignored here.  Returns True if state changed."""
        self._touch(scn)
        position = self.imcu.position_of(rowid)
        if position is None:
            return False
        if self._invalid_rows[position]:
            return False
        self._invalid_rows[position] = True
        return True

    def invalidate_block(self, dba: DBA, scn: SCN) -> None:
        """Block-level invalidation: every captured row of ``dba``."""
        self._touch(scn)
        self._invalid_blocks.add(dba)

    def invalidate_fully(self, scn: SCN) -> None:
        """Coarse invalidation (paper, III-E): the IMCU cannot be used
        until repopulated."""
        self._touch(scn)
        self.fully_invalid = True

    def invalidate_column(self, name: str, scn: SCN) -> None:
        self._touch(scn)
        self._invalid_columns.add(name)

    def _touch(self, scn: SCN) -> None:
        if scn > self.last_invalidation_scn:
            self.last_invalidation_scn = scn

    # ------------------------------------------------------------------
    # scan-side reconciliation
    # ------------------------------------------------------------------
    def is_column_valid(self, name: str) -> bool:
        return name not in self._invalid_columns

    def valid_row_mask(self) -> np.ndarray:
        """Boolean mask over IMCU row positions: True = IMCU data usable."""
        if self.fully_invalid or self.dropped:
            return np.zeros(self.imcu.n_rows, dtype=bool)
        mask = ~self._invalid_rows
        if self._invalid_blocks:
            for position, rowid in enumerate(self.imcu.rowids):
                if rowid.dba in self._invalid_blocks:
                    mask[position] = False
        return mask

    def invalid_rowids(self) -> list[RowId]:
        """Rowids currently marked invalid (row- or block-level).

        Repopulation swap uses this to carry invalidations the outgoing
        unit saw *after* the incoming unit's snapshot was captured -- see
        ``InMemoryColumnStore.register_unit``.
        """
        mask = self.valid_row_mask()
        return [
            rowid
            for position, rowid in enumerate(self.imcu.rowids)
            if not mask[position]
        ]

    @property
    def invalid_count(self) -> int:
        if self.fully_invalid:
            return self.imcu.n_rows
        if not self._invalid_blocks:
            return int(self._invalid_rows.sum())
        return int((~self.valid_row_mask()).sum())

    @property
    def invalid_fraction(self) -> float:
        if self.imcu.n_rows == 0:
            return 1.0 if self.fully_invalid else 0.0
        return self.invalid_count / self.imcu.n_rows

    # ------------------------------------------------------------------
    # concurrency control (pins for scans, states for repopulate/drop)
    # ------------------------------------------------------------------
    def pin(self) -> None:
        if self.dropped:
            raise InvalidStateError("cannot pin a dropped SMU")
        self._pins += 1

    def unpin(self) -> None:
        if self._pins <= 0:
            raise InvalidStateError("unpin without pin")
        self._pins -= 1

    @property
    def pinned(self) -> bool:
        return self._pins > 0

    def mark_dropped(self) -> None:
        if self.pinned:
            raise InvalidStateError("cannot drop a pinned SMU")
        self.dropped = True

    def __repr__(self) -> str:
        return (
            f"SMU(imcu={self.imcu.imcu_id}, invalid={self.invalid_count}/"
            f"{self.imcu.n_rows}, full={self.fully_invalid})"
        )
