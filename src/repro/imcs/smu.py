"""Snapshot Metadata Units.

"A Snapshot Metadata Unit (SMU) accompanies each IMCU and tracks the
validity of the data populated in its corresponding IMCU at various levels
of granularity -- block level, row level and column level" (paper, II-B).
The scan engine reconciles the IMCU against its SMU: invalid rows are
served from the row store instead.

SMUs also provide the concurrency control that synchronises scans,
repopulation and drop: a scan pins the SMU; repopulation swaps in a fresh
IMCU only between scans; drop marks the unit unusable.

Invalidation is *monotone*: marking extra rows invalid is always safe
(costs row-store fallback), while missing one would break consistency --
the central invariant the DBIM-on-ADG machinery maintains on the standby.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import InvalidStateError
from repro.common.ids import DBA, RowId
from repro.common.scn import NULL_SCN, SCN
from repro.imcs.imcu import IMCU


class SMU:
    """Validity metadata + concurrency control for one IMCU."""

    def __init__(self, imcu: IMCU) -> None:
        self.imcu = imcu
        self._invalid_rows = np.zeros(imcu.n_rows, dtype=bool)
        self._invalid_blocks: set[DBA] = set()
        #: Invalidation epoch: bumped whenever the validity state changes.
        #: Derived structures (the validity mask, the per-DBA reconcile
        #: index) are cached against it, so repeated scans between
        #: invalidations pay for them once.
        self._epoch = 0
        self._mask_epoch = -1
        self._mask_cache: np.ndarray | None = None
        self._by_dba_epoch = -1
        self._by_dba_cache: dict[DBA, list[int]] | None = None
        #: Columns dropped since population (column-level validity).
        self._invalid_columns: set[str] = set()
        #: Highest SCN at which an invalidation was recorded; repopulation
        #: uses it to pick a snapshot that covers everything invalidated.
        self.last_invalidation_scn: SCN = NULL_SCN
        #: Set when the whole IMCU is unusable (coarse invalidation or a
        #: schema change); scans must fall back to the row store entirely.
        self.fully_invalid = False
        #: Drop state: a dropped unit is never scanned or repopulated.
        self.dropped = False
        #: Scan pin count (concurrency control between scans and drop).
        self._pins = 0
        #: Repopulation bookkeeping.
        self.repopulating = False
        self.last_repopulated_at: float = -1.0

    # ------------------------------------------------------------------
    # invalidation (called under the owner store's latch discipline)
    # ------------------------------------------------------------------
    def invalidate_row(self, rowid: RowId, scn: SCN) -> bool:
        """Mark one row invalid.  Rows not captured by the IMCU (inserted
        after its snapshot) are already row-store-only; marking their block
        as having extra rows is handled via ``captured_slots`` at scan
        time, so they are ignored here.  Returns True if state changed."""
        self._touch(scn)
        position = self.imcu.position_of(rowid)
        if position is None:
            return False
        if self._invalid_rows[position]:
            return False
        self._invalid_rows[position] = True
        self._epoch += 1
        return True

    def invalidate_slots(
        self, batches: list[tuple[DBA, tuple[int, ...]]], scn: SCN
    ) -> int:
        """Group-at-once row invalidation: mark every ``(dba, slots)``
        batch invalid with a single epoch bump and one mask write.

        This is the flush component's fast path -- draining a worklink
        costs O(groups) epoch bumps instead of O(rows).  Uncaptured slots
        are dropped exactly as :meth:`invalidate_row` ignores them.
        Returns the number of rows newly invalidated.
        """
        self._touch(scn)
        positions = self.imcu.positions_for_block_batches(batches)
        if positions.size == 0:
            return 0
        fresh = positions[~self._invalid_rows[positions]]
        if fresh.size == 0:
            return 0
        self._invalid_rows[fresh] = True
        self._epoch += 1
        return int(fresh.size)

    def invalidate_block(self, dba: DBA, scn: SCN) -> None:
        """Block-level invalidation: every captured row of ``dba``."""
        self._touch(scn)
        if dba not in self._invalid_blocks:
            self._invalid_blocks.add(dba)
            self._epoch += 1

    def invalidate_fully(self, scn: SCN) -> None:
        """Coarse invalidation (paper, III-E): the IMCU cannot be used
        until repopulated."""
        self._touch(scn)
        if not self.fully_invalid:
            self.fully_invalid = True
            self._epoch += 1

    def invalidate_column(self, name: str, scn: SCN) -> None:
        self._touch(scn)
        self._invalid_columns.add(name)

    def _touch(self, scn: SCN) -> None:
        if scn > self.last_invalidation_scn:
            self.last_invalidation_scn = scn

    # ------------------------------------------------------------------
    # scan-side reconciliation
    # ------------------------------------------------------------------
    def is_column_valid(self, name: str) -> bool:
        return name not in self._invalid_columns

    def columns_valid(self, names) -> bool:
        """True when no column in ``names`` has been invalidated (set-at-
        once check for the scan engine's per-unit usability test)."""
        return (
            not self._invalid_columns
            or self._invalid_columns.isdisjoint(names)
        )

    def valid_row_mask(self) -> np.ndarray:
        """Boolean mask over IMCU row positions: True = IMCU data usable.

        Cached until the invalidation epoch changes; the returned array is
        shared and marked read-only -- callers must not mutate it.
        """
        if self._mask_epoch != self._epoch:
            self._mask_cache = self._compute_mask()
            self._mask_cache.flags.writeable = False
            self._mask_epoch = self._epoch
        return self._mask_cache

    def _compute_mask(self) -> np.ndarray:
        if self.fully_invalid or self.dropped:
            return np.zeros(self.imcu.n_rows, dtype=bool)
        mask = ~self._invalid_rows
        if self._invalid_blocks:
            for dba in self._invalid_blocks:
                positions = self.imcu.positions_for_dba(dba)
                if positions.size:
                    mask[positions] = False
        return mask

    def invalid_slots_by_dba(self) -> dict[DBA, list[int]]:
        """Captured-but-invalid rows grouped by block: DBA -> slot list.

        The scan engine's reconcile path walks this so each block's chains
        are visited once; cached against the invalidation epoch like the
        validity mask.  Read-only for callers.
        """
        if self._by_dba_epoch != self._epoch:
            grouped: dict[DBA, list[int]] = {}
            rowids = self.imcu.rowids
            for position in np.flatnonzero(~self.valid_row_mask()).tolist():
                rowid = rowids[position]
                grouped.setdefault(rowid.dba, []).append(rowid.slot)
            self._by_dba_cache = grouped
            self._by_dba_epoch = self._epoch
        return self._by_dba_cache

    def invalid_rowids(self) -> list[RowId]:
        """Rowids currently marked invalid (row- or block-level).

        Repopulation swap uses this to carry invalidations the outgoing
        unit saw *after* the incoming unit's snapshot was captured -- see
        ``InMemoryColumnStore.register_unit``.
        """
        mask = self.valid_row_mask()
        rowids = self.imcu.rowids
        return [rowids[i] for i in np.flatnonzero(~mask).tolist()]

    @property
    def invalid_blocks(self) -> frozenset[DBA]:
        """Blocks invalidated wholesale (read-only view)."""
        return frozenset(self._invalid_blocks)

    def invalid_row_slots(self) -> dict[DBA, list[int]]:
        """*Row-level* invalidations only, grouped DBA -> slot list.

        Unlike :meth:`invalid_slots_by_dba` this excludes block-level and
        coarse invalidation, so a repopulation swap can carry the boolean
        row mask verbatim and handle whole-block records separately (a
        block invalidation must stay whole-block on the new unit: it may
        cover slots the old IMCU never captured).
        """
        grouped: dict[DBA, list[int]] = {}
        rowids = self.imcu.rowids
        for position in np.flatnonzero(self._invalid_rows).tolist():
            rowid = rowids[position]
            grouped.setdefault(rowid.dba, []).append(rowid.slot)
        return grouped

    def snapshot_validity(
        self,
    ) -> tuple[np.ndarray, frozenset[DBA], bool, SCN]:
        """Copy the validity state for a population checkpoint
        (:mod:`repro.restart`): the exact inverse of
        :meth:`restore_validity`."""
        return (
            self._invalid_rows.copy(),
            frozenset(self._invalid_blocks),
            self.fully_invalid,
            self.last_invalidation_scn,
        )

    def restore_validity(
        self,
        invalid_rows: np.ndarray,
        invalid_blocks,
        fully_invalid: bool,
        last_invalidation_scn: SCN,
    ) -> None:
        """Install checkpointed validity state on a freshly rebuilt unit
        (instant restart, :mod:`repro.restart`).  The mask is copied; the
        epoch is bumped so every cached derivation recomputes."""
        if len(invalid_rows) != self.imcu.n_rows:
            raise InvalidStateError(
                f"checkpoint mask covers {len(invalid_rows)} rows, "
                f"IMCU holds {self.imcu.n_rows}"
            )
        self._invalid_rows = np.array(invalid_rows, dtype=bool)
        self._invalid_blocks = set(invalid_blocks)
        self.fully_invalid = bool(fully_invalid)
        if last_invalidation_scn > self.last_invalidation_scn:
            self.last_invalidation_scn = last_invalidation_scn
        self._epoch += 1

    @property
    def invalid_count(self) -> int:
        if self.fully_invalid:
            return self.imcu.n_rows
        if not self._invalid_blocks:
            return int(self._invalid_rows.sum())
        return self.imcu.n_rows - int(self.valid_row_mask().sum())

    @property
    def invalid_fraction(self) -> float:
        if self.imcu.n_rows == 0:
            return 1.0 if self.fully_invalid else 0.0
        return self.invalid_count / self.imcu.n_rows

    # ------------------------------------------------------------------
    # concurrency control (pins for scans, states for repopulate/drop)
    # ------------------------------------------------------------------
    def pin(self) -> None:
        if self.dropped:
            raise InvalidStateError("cannot pin a dropped SMU")
        self._pins += 1

    def unpin(self) -> None:
        if self._pins <= 0:
            raise InvalidStateError("unpin without pin")
        self._pins -= 1

    @property
    def pinned(self) -> bool:
        return self._pins > 0

    def mark_dropped(self) -> None:
        if self.pinned:
            raise InvalidStateError("cannot drop a pinned SMU")
        self.dropped = True
        self._epoch += 1

    def __repr__(self) -> str:
        return (
            f"SMU(imcu={self.imcu.imcu_id}, invalid={self.invalid_count}/"
            f"{self.imcu.n_rows}, full={self.fully_invalid})"
        )
