"""The In-Memory Scan Engine.

Evaluates predicates over IMCUs with vectorised kernels and min/max
storage-index pruning, and *reconciles* each IMCU against its SMU: rows
marked invalid -- and rows that appeared in covered blocks after the IMCU's
snapshot ("edge" rows) -- are fetched from the row store through Consistent
Read instead (paper, II-B: "the In-Memory Scan Engine reconciles the IMCU
data with the SMU to ensure that invalid or stale data is not delivered
from the IMCS, but delivered from the database buffer cache").

Correctness precondition (asserted by callers): every invalidation with
commitSCN <= the scan snapshot has been flushed to the SMUs.  On the
primary the commit hook does this synchronously; on the standby the
QuerySCN-advancement protocol guarantees it for snapshot == QuerySCN.

The scan returns a simulated cost alongside the rows: columnar rows cost
``IMCS_COST_PER_ROW`` and row-store fallback rows cost
``ROWSTORE_COST_PER_ROW`` -- a ~400x per-row gap, which is the cost-model
expression of the paper's "orders of magnitude" scan speedup.
"""

from __future__ import annotations

import operator

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.common.ids import DBA
from repro.common.scn import SCN
from repro.imcs.expressions import RowResolver
from repro.imcs.imcu import IMCU
from repro.imcs.smu import SMU
from repro.imcs.store import InMemoryColumnStore
from repro.rowstore.cr import TransactionView, visible_values_batch
from repro.rowstore.table import Table
from repro.rowstore.values import Schema

#: Simulated seconds per row scanned through the columnar path.
IMCS_COST_PER_ROW = 5e-9
#: Simulated seconds per row scanned through the row-format path.
ROWSTORE_COST_PER_ROW = 2e-6


@dataclass(frozen=True, slots=True)
class Predicate:
    """A single-column filter predicate.

    ``op`` is one of '=', '!=', '<', '<=', '>', '>=', 'between',
    'is_null', 'is_not_null'.
    """

    column: str
    op: str
    value: object = None
    value2: object = None

    # -- constructors ---------------------------------------------------
    @classmethod
    def eq(cls, column: str, value) -> "Predicate":
        return cls(column, "=", value)

    @classmethod
    def ne(cls, column: str, value) -> "Predicate":
        return cls(column, "!=", value)

    @classmethod
    def lt(cls, column: str, value) -> "Predicate":
        return cls(column, "<", value)

    @classmethod
    def le(cls, column: str, value) -> "Predicate":
        return cls(column, "<=", value)

    @classmethod
    def gt(cls, column: str, value) -> "Predicate":
        return cls(column, ">", value)

    @classmethod
    def ge(cls, column: str, value) -> "Predicate":
        return cls(column, ">=", value)

    @classmethod
    def between(cls, column: str, lo, hi) -> "Predicate":
        return cls(column, "between", lo, hi)

    @classmethod
    def is_null(cls, column: str) -> "Predicate":
        return cls(column, "is_null")

    @classmethod
    def is_not_null(cls, column: str) -> "Predicate":
        return cls(column, "is_not_null")

    # -- vectorised evaluation -------------------------------------------
    def eval_mask(self, imcu: IMCU) -> np.ndarray:
        cu = imcu.column(self.column)
        if self.op == "=":
            return cu.eq_mask(self.value)
        if self.op == "!=":
            return ~cu.eq_mask(self.value) & ~cu.null_mask()
        if self.op == "<":
            return cu.range_mask(None, self.value, hi_inclusive=False)
        if self.op == "<=":
            return cu.range_mask(None, self.value, hi_inclusive=True)
        if self.op == ">":
            return cu.range_mask(self.value, None, lo_inclusive=False)
        if self.op == ">=":
            return cu.range_mask(self.value, None, lo_inclusive=True)
        if self.op == "between":
            return cu.range_mask(self.value, self.value2)
        if self.op == "is_null":
            return cu.null_mask()
        if self.op == "is_not_null":
            return ~cu.null_mask()
        raise ValueError(f"unknown predicate op {self.op!r}")

    # -- row-at-a-time evaluation ------------------------------------------
    def matches(self, v: object) -> bool:
        """Evaluate against one already-resolved value."""
        if self.op == "is_null":
            return v is None
        if self.op == "is_not_null":
            return v is not None
        if v is None:
            return False
        if self.op == "=":
            return v == self.value
        if self.op == "!=":
            return v != self.value
        if self.op == "<":
            return v < self.value
        if self.op == "<=":
            return v <= self.value
        if self.op == ">":
            return v > self.value
        if self.op == ">=":
            return v >= self.value
        if self.op == "between":
            return self.value <= v <= self.value2
        raise ValueError(f"unknown predicate op {self.op!r}")

    def eval_row(self, values: tuple, schema: Schema) -> bool:
        return self.matches(values[schema.column_index(self.column)])

    def row_matcher(self):
        """Compile to a direct closure: the op is dispatched once here,
        not once per reconcile row (see :class:`_CompiledScan`)."""
        op, value = self.op, self.value
        if op == "=":
            return lambda v: v is not None and v == value
        if op == "!=":
            return lambda v: v is not None and v != value
        if op == "<":
            return lambda v: v is not None and v < value
        if op == "<=":
            return lambda v: v is not None and v <= value
        if op == ">":
            return lambda v: v is not None and v > value
        if op == ">=":
            return lambda v: v is not None and v >= value
        if op == "between":
            value2 = self.value2
            return lambda v: v is not None and value <= v <= value2
        if op == "is_null":
            return lambda v: v is None
        if op == "is_not_null":
            return lambda v: v is not None
        raise ValueError(f"unknown predicate op {op!r}")

    # -- storage-index pruning ----------------------------------------------
    def can_prune(self, imcu: IMCU) -> bool:
        """True if the IMCU's min/max proves no row can match."""
        if self.op == "=":
            return imcu.prune_range(self.column, self.value, self.value)
        if self.op in ("<", "<="):
            return imcu.prune_range(self.column, None, self.value)
        if self.op in (">", ">="):
            return imcu.prune_range(self.column, self.value, None)
        if self.op == "between":
            return imcu.prune_range(self.column, self.value, self.value2)
        return False


@dataclass(slots=True)
class ScanStats:
    imcs_rows: int = 0
    rowstore_rows: int = 0
    fallback_rows: int = 0  # subset of rowstore_rows caused by SMU reconcile
    imcus_used: int = 0
    imcus_pruned: int = 0
    imcus_unusable: int = 0
    cost_seconds: float = 0.0

    def merge(self, other: "ScanStats") -> None:
        self.imcs_rows += other.imcs_rows
        self.rowstore_rows += other.rowstore_rows
        self.fallback_rows += other.fallback_rows
        self.imcus_used += other.imcus_used
        self.imcus_pruned += other.imcus_pruned
        self.imcus_unusable += other.imcus_unusable
        self.cost_seconds += other.cost_seconds


@dataclass(slots=True)
class ScanResult:
    rows: list[tuple] = field(default_factory=list)
    stats: ScanStats = field(default_factory=ScanStats)


@dataclass(slots=True)
class UnitScanContext:
    """Structured description of one IMCU morsel's work, for execution
    backends that cannot run the morsel closure as-is.  The process
    backend offloads the columnar kernel part (predicate masks + batch
    projection over the CU buffers) to a worker process and runs the
    row-store reconcile tail in the parent through ``engine``."""

    engine: "ScanEngine"
    table: object
    store: object
    smu: SMU
    snapshot_scn: SCN
    compiled: "_CompiledScan"
    on_imcu_matches: object = None


@dataclass(slots=True)
class ScanMorsel:
    """One independently-runnable slice of a scan (morsel-driven
    parallelism): an IMCU+reconcile unit, a chunk of row-format blocks,
    or a stats-only placeholder.  ``run()`` produces a partial
    :class:`ScanResult`; merging all partials *in plan order* reproduces
    the serial :meth:`ScanEngine.scan` exactly (rows and stats)."""

    kind: str  # "imcu" | "rowstore" | "stats"
    description: str
    run: Callable[[], ScanResult]
    #: Present on "imcu" morsels: lets real-parallel backends split the
    #: columnar kernels from the reconcile tail (see UnitScanContext).
    unit_ctx: Optional[UnitScanContext] = None


def unit_matched_positions(
    unit, valid: np.ndarray, predicates: list[Predicate]
) -> np.ndarray:
    """Positions of SMU-valid rows matching every predicate.

    ``unit`` is anything with ``.column(name)`` (an IMCU, or a worker-side
    column set rebuilt from shared memory).  Predicate masks are freshly
    allocated so the combine is in-place; ``valid`` is only ever a read
    operand.  Serial scans and process-parallel workers share this exact
    kernel, which is what makes parallel == serial row-for-row.
    """
    mask = None
    for predicate in predicates:
        predicate_mask = predicate.eval_mask(unit)
        if mask is None:
            mask = predicate_mask
        else:
            mask &= predicate_mask
    if mask is None:
        matched = valid
    else:
        mask &= valid
        matched = mask
    return np.flatnonzero(matched)


def merge_partials(partials: list[ScanResult]) -> ScanResult:
    """Merge morsel partials (in plan order) into one result."""
    merged = ScanResult()
    for partial in partials:
        merged.rows.extend(partial.rows)
        merged.stats.merge(partial.stats)
    return merged


def _match_any_row(values: tuple) -> bool:
    """Predicate-free scan: every visible row matches."""
    return True


class _CompiledScan:
    """Per-partition compiled scan state.

    Predicates and the projection list are resolved against the schema
    *once per scan* -- each reconcile row then pays only a tuple index per
    predicate instead of a name -> index lookup, and the projection is a
    single C-level ``itemgetter`` when no expression is involved.
    """

    __slots__ = (
        "resolver", "predicates", "names", "needed", "needed_set",
        "matches", "_projector",
    )

    def __init__(
        self,
        resolver: RowResolver,
        predicates: list[Predicate],
        names: list[str],
        schema: Schema,
    ) -> None:
        self.resolver = resolver
        self.predicates = predicates
        self.names = names
        self.needed = list(dict.fromkeys(
            [p.column for p in predicates] + list(names)
        ))
        self.needed_set = frozenset(self.needed)
        expressions = resolver.expressions
        # accessor is a column position (plain column) or a closure
        # (In-Memory Expression evaluated against the stored row)
        pairs = []
        for predicate in predicates:
            expression = (
                expressions.get(predicate.column)
                if expressions is not None else None
            )
            if expression is not None:
                accessor = (
                    lambda values, e=expression, s=schema: e.evaluate(values, s)
                )
            else:
                accessor = schema.column_index(predicate.column)
            pairs.append((accessor, predicate.row_matcher()))
        if not pairs:
            self.matches = _match_any_row
        elif len(pairs) == 1:
            accessor, match = pairs[0]
            if callable(accessor):
                self.matches = (
                    lambda values, a=accessor, m=match: m(a(values))
                )
            else:
                self.matches = (
                    lambda values, i=accessor, m=match: m(values[i])
                )
        else:
            steps = [
                (a if callable(a) else operator.itemgetter(a), m)
                for a, m in pairs
            ]

            def matches(values, steps=steps):
                for accessor, match in steps:
                    if not match(accessor(values)):
                        return False
                return True

            self.matches = matches
        if expressions is not None and any(
            resolver.is_expression(name) for name in names
        ):
            self._projector = None  # expression values: resolve per row
        elif len(names) == 1:
            index = schema.column_index(names[0])
            self._projector = lambda values, i=index: (values[i],)
        else:
            self._projector = operator.itemgetter(
                *[schema.column_index(name) for name in names]
            )

    def project(self, values: tuple) -> tuple:
        projector = self._projector
        if projector is not None:
            return projector(values)
        return self.resolver.project(values, self.names)


class ScanEngine:
    """Scans tables through the IMCS with row-store reconciliation."""

    def __init__(
        self,
        imcs: Optional[InMemoryColumnStore],
        txns: TransactionView,
    ) -> None:
        self.imcs = imcs
        self.txns = txns

    # ------------------------------------------------------------------
    def scan(
        self,
        table: Table,
        snapshot_scn: SCN,
        predicates: Optional[list[Predicate]] = None,
        columns: Optional[list[str]] = None,
        partitions: Optional[list[str]] = None,
        on_imcu_matches=None,
    ) -> ScanResult:
        """Filter + project scan at a snapshot.

        Uses the IMCS for every partition enabled and populated here;
        everything else goes through the row-format path.

        ``on_imcu_matches(imcu, positions) -> bool`` is the aggregation
        push-down hook (see :mod:`repro.imcs.aggregate`): when it returns
        True the matching IMCU positions are consumed by the hook instead
        of being materialised into ``result.rows`` -- reconcile-path rows
        still come back as tuples.
        """
        predicates = predicates or []
        names = columns or [c.name for c in table.schema.live_columns]
        result = ScanResult()
        part_names = partitions if partitions is not None else list(table.partitions)
        for pname in part_names:
            partition = table.partition(pname)
            self._scan_partition(
                table, partition.object_id, snapshot_scn,
                predicates, names, result, on_imcu_matches,
            )
        return result

    # ------------------------------------------------------------------
    def plan_morsels(
        self,
        table: Table,
        snapshot_scn: SCN,
        predicates: Optional[list[Predicate]] = None,
        columns: Optional[list[str]] = None,
        partitions: Optional[list[str]] = None,
        on_imcu_matches=None,
        rowstore_blocks_per_morsel: int = 16,
    ) -> list[ScanMorsel]:
        """Split the scan into independently-runnable morsels.

        Mirrors :meth:`scan`'s per-partition walk: one morsel per usable
        SMU (columnar scan + its reconcile tail), a stats-only morsel
        counting units whose IMCU snapshot postdates the query snapshot,
        and chunked morsels over the blocks with no columnar coverage.
        Safe to execute while redo apply proceeds: the scan filters by
        ``snapshot_scn`` through Consistent Read, and any invalidation
        flushed after planning only affects commits beyond the snapshot.
        """
        predicates = predicates or []
        names = columns or [c.name for c in table.schema.live_columns]
        part_names = (
            partitions if partitions is not None else list(table.partitions)
        )
        morsels: list[ScanMorsel] = []
        for pname in part_names:
            partition = table.partition(pname)
            object_id = partition.object_id
            segment = partition.segment
            im_segment = None
            if self.imcs is not None and self.imcs.is_enabled(object_id):
                im_segment = self.imcs.segment(object_id)
            expressions = (
                im_segment.expressions
                if im_segment is not None and len(im_segment.expressions)
                else None
            )
            resolver = RowResolver(table.schema, expressions)
            compiled = _CompiledScan(resolver, predicates, names, table.schema)
            store = segment._store

            handled_dbas: set[DBA] = set()
            unusable = 0
            if im_segment is not None:
                for smu in im_segment.live_units():
                    if smu.imcu.snapshot_scn > snapshot_scn:
                        unusable += 1
                        continue
                    handled_dbas.update(smu.imcu.covered_dbas)

                    def run_unit(smu=smu, compiled=compiled, store=store):
                        partial = ScanResult()
                        self._scan_unit(
                            table, store, smu, snapshot_scn, compiled,
                            partial, on_imcu_matches,
                        )
                        return partial

                    morsels.append(ScanMorsel(
                        "imcu", f"{pname}/imcu@{smu.imcu.snapshot_scn}",
                        run_unit,
                        unit_ctx=UnitScanContext(
                            engine=self, table=table, store=store,
                            smu=smu, snapshot_scn=snapshot_scn,
                            compiled=compiled,
                            on_imcu_matches=on_imcu_matches,
                        ),
                    ))
            if unusable:
                def run_stats(unusable=unusable):
                    partial = ScanResult()
                    partial.stats.imcus_unusable += unusable
                    return partial

                morsels.append(
                    ScanMorsel("stats", f"{pname}/unusable", run_stats)
                )

            leftover = [d for d in segment.dbas if d not in handled_dbas]
            for i in range(0, len(leftover), rowstore_blocks_per_morsel):
                chunk = leftover[i:i + rowstore_blocks_per_morsel]

                def run_rowstore(chunk=chunk, compiled=compiled, store=store):
                    partial = ScanResult()
                    self._rowstore_scan_dbas(
                        table, store, chunk, snapshot_scn, compiled,
                        partial, fallback=False,
                    )
                    return partial

                morsels.append(ScanMorsel(
                    "rowstore",
                    f"{pname}/rowstore[{i}:{i + len(chunk)}]",
                    run_rowstore,
                ))
        return morsels

    # ------------------------------------------------------------------
    def _scan_partition(
        self, table, object_id, snapshot_scn, predicates, names, result,
        on_imcu_matches=None,
    ) -> None:
        segment = table.partition_by_object_id(object_id).segment
        im_segment = None
        if self.imcs is not None and self.imcs.is_enabled(object_id):
            im_segment = self.imcs.segment(object_id)
        expressions = (
            im_segment.expressions
            if im_segment is not None and len(im_segment.expressions)
            else None
        )
        resolver = RowResolver(table.schema, expressions)
        # Resolve predicate/projection columns once per scan; every
        # reconcile row reuses the compiled accessors.
        compiled = _CompiledScan(resolver, predicates, names, table.schema)
        store = segment._store

        handled_dbas: set[DBA] = set()
        if im_segment is not None:
            for smu in im_segment.live_units():
                if smu.imcu.snapshot_scn > snapshot_scn:
                    # IMCU is newer than the query snapshot: unusable.
                    result.stats.imcus_unusable += 1
                    continue
                handled_dbas.update(smu.imcu.covered_dbas)
                self._scan_unit(
                    table, store, smu, snapshot_scn, compiled, result,
                    on_imcu_matches,
                )

        # Blocks with no usable columnar coverage: row-format scan.
        leftover = [d for d in segment.dbas if d not in handled_dbas]
        self._rowstore_scan_dbas(
            table, store, leftover, snapshot_scn, compiled, result,
            fallback=False,
        )

    # ------------------------------------------------------------------
    def _unit_usable(self, smu: SMU, compiled: _CompiledScan) -> bool:
        if smu.fully_invalid or smu.dropped:
            return False
        needed = compiled.needed_set
        return (
            needed <= smu.imcu.column_name_set
            and smu.columns_valid(needed)
        )

    def _scan_unit(
        self, table, store, smu: SMU, snapshot_scn,
        compiled: _CompiledScan, result, on_imcu_matches=None,
    ) -> None:
        imcu = smu.imcu
        if not self._unit_usable(smu, compiled):
            result.stats.imcus_unusable += 1
            self._rowstore_scan_dbas(
                table, store, imcu.covered_dbas, snapshot_scn, compiled,
                result, fallback=True,
            )
            return

        smu.pin()
        try:
            # 1. storage-index pruning
            valid = smu.valid_row_mask()
            predicates = compiled.predicates
            if any(p.can_prune(imcu) for p in predicates):
                # min/max proves no *captured* row matches; invalid and
                # edge rows below may still match their current values.
                result.stats.imcus_pruned += 1
                matched_positions = np.zeros(0, dtype=np.int64)
            else:
                matched_positions = unit_matched_positions(
                    imcu, valid, predicates
                )
                result.stats.imcus_used += 1
                result.stats.imcs_rows += imcu.n_rows
                result.stats.cost_seconds += IMCS_COST_PER_ROW * imcu.n_rows

            # 2. matching valid rows: hand to the push-down hook, or
            #    project straight from the IMCU
            if on_imcu_matches is not None and on_imcu_matches(
                imcu, matched_positions
            ):
                pass  # consumed vectorially (aggregation push-down)
            else:
                result.rows.extend(
                    imcu.project_rows(matched_positions, compiled.names)
                )

            self._reconcile_unit(
                table, store, smu, snapshot_scn, compiled, result
            )
        finally:
            smu.unpin()

    def _reconcile_unit(
        self, table, store, smu: SMU, snapshot_scn,
        compiled: _CompiledScan, result,
    ) -> None:
        """Row-store tail of one unit scan: invalid rows and edge rows.

        Caller holds the SMU pin.  Shared between the serial scan and the
        process-parallel backend (which offloads only the columnar part).
        """
        imcu = smu.imcu
        # 3. invalid rows: reconcile through the row store, one block
        #    at a time (the SMU keeps the DBA grouping cached)
        for dba, slots in smu.invalid_slots_by_dba().items():
            block = store.get_optional(dba)
            self._fetch_block_slots(
                table, block, dba, slots, snapshot_scn, compiled, result,
            )

        # 4. edge rows: slots added to covered blocks after the snapshot
        for dba, captured in imcu.captured_slots.items():
            block = store.get_optional(dba)
            if block is None or block.used_slots <= captured:
                continue
            self._fetch_block_slots(
                table, block, dba, range(captured, block.used_slots),
                snapshot_scn, compiled, result,
            )

    # ------------------------------------------------------------------
    def _fetch_block_slots(
        self, table, block, dba, slots, snapshot_scn,
        compiled: _CompiledScan, result,
    ) -> None:
        """Reconcile-fetch several slots of one block.

        The block's chains are walked once and the buffer cache is charged
        once per block, not once per row.
        """
        stats = result.stats
        if table.buffer_cache is not None:
            stats.cost_seconds += table.buffer_cache.touch(dba)
        if block is None:
            return
        n = 0
        rows = result.rows
        matches = compiled.matches
        project = compiled.project
        for values in visible_values_batch(
            block, slots, snapshot_scn, self.txns
        ):
            n += 1
            if values is not None and matches(values):
                rows.append(project(values))
        stats.rowstore_rows += n
        stats.fallback_rows += n
        stats.cost_seconds += ROWSTORE_COST_PER_ROW * n

    def _rowstore_fetch_rowids(
        self, table, store, rowids, snapshot_scn,
        compiled: _CompiledScan, result,
    ) -> None:
        """Fetch arbitrary rowids through CR, grouped by block."""
        by_dba: dict[DBA, list[int]] = {}
        for rowid in rowids:
            by_dba.setdefault(rowid.dba, []).append(rowid.slot)
        for dba, slots in by_dba.items():
            self._fetch_block_slots(
                table, store.get_optional(dba), dba, slots,
                snapshot_scn, compiled, result,
            )

    def _rowstore_scan_dbas(
        self, table, store, dbas, snapshot_scn,
        compiled: _CompiledScan, result, fallback,
    ) -> None:
        if not dbas:
            return
        stats = result.stats
        rows = result.rows
        matches = compiled.matches
        project = compiled.project
        for dba in dbas:
            block = store.get_optional(dba)
            if block is None:
                continue
            if table.buffer_cache is not None:
                stats.cost_seconds += table.buffer_cache.touch(dba)
            n = block.used_slots
            for values in visible_values_batch(
                block, range(n), snapshot_scn, self.txns
            ):
                if values is not None and matches(values):
                    rows.append(project(values))
            stats.rowstore_rows += n
            if fallback:
                stats.fallback_rows += n
            stats.cost_seconds += ROWSTORE_COST_PER_ROW * n
