"""The In-Memory Scan Engine.

Evaluates predicates over IMCUs with vectorised kernels and min/max
storage-index pruning, and *reconciles* each IMCU against its SMU: rows
marked invalid -- and rows that appeared in covered blocks after the IMCU's
snapshot ("edge" rows) -- are fetched from the row store through Consistent
Read instead (paper, II-B: "the In-Memory Scan Engine reconciles the IMCU
data with the SMU to ensure that invalid or stale data is not delivered
from the IMCS, but delivered from the database buffer cache").

Correctness precondition (asserted by callers): every invalidation with
commitSCN <= the scan snapshot has been flushed to the SMUs.  On the
primary the commit hook does this synchronously; on the standby the
QuerySCN-advancement protocol guarantees it for snapshot == QuerySCN.

The scan returns a simulated cost alongside the rows: columnar rows cost
``IMCS_COST_PER_ROW`` and row-store fallback rows cost
``ROWSTORE_COST_PER_ROW`` -- a ~400x per-row gap, which is the cost-model
expression of the paper's "orders of magnitude" scan speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.common.ids import DBA, RowId
from repro.common.scn import SCN
from repro.imcs.expressions import RowResolver
from repro.imcs.imcu import IMCU
from repro.imcs.smu import SMU
from repro.imcs.store import InMemoryColumnStore
from repro.rowstore.cr import TransactionView, visible_values
from repro.rowstore.table import Table
from repro.rowstore.values import Schema

#: Simulated seconds per row scanned through the columnar path.
IMCS_COST_PER_ROW = 5e-9
#: Simulated seconds per row scanned through the row-format path.
ROWSTORE_COST_PER_ROW = 2e-6


@dataclass(frozen=True, slots=True)
class Predicate:
    """A single-column filter predicate.

    ``op`` is one of '=', '!=', '<', '<=', '>', '>=', 'between',
    'is_null', 'is_not_null'.
    """

    column: str
    op: str
    value: object = None
    value2: object = None

    # -- constructors ---------------------------------------------------
    @classmethod
    def eq(cls, column: str, value) -> "Predicate":
        return cls(column, "=", value)

    @classmethod
    def ne(cls, column: str, value) -> "Predicate":
        return cls(column, "!=", value)

    @classmethod
    def lt(cls, column: str, value) -> "Predicate":
        return cls(column, "<", value)

    @classmethod
    def le(cls, column: str, value) -> "Predicate":
        return cls(column, "<=", value)

    @classmethod
    def gt(cls, column: str, value) -> "Predicate":
        return cls(column, ">", value)

    @classmethod
    def ge(cls, column: str, value) -> "Predicate":
        return cls(column, ">=", value)

    @classmethod
    def between(cls, column: str, lo, hi) -> "Predicate":
        return cls(column, "between", lo, hi)

    @classmethod
    def is_null(cls, column: str) -> "Predicate":
        return cls(column, "is_null")

    @classmethod
    def is_not_null(cls, column: str) -> "Predicate":
        return cls(column, "is_not_null")

    # -- vectorised evaluation -------------------------------------------
    def eval_mask(self, imcu: IMCU) -> np.ndarray:
        cu = imcu.column(self.column)
        if self.op == "=":
            return cu.eq_mask(self.value)
        if self.op == "!=":
            return ~cu.eq_mask(self.value) & ~cu.null_mask()
        if self.op == "<":
            return cu.range_mask(None, self.value, hi_inclusive=False)
        if self.op == "<=":
            return cu.range_mask(None, self.value, hi_inclusive=True)
        if self.op == ">":
            return cu.range_mask(self.value, None, lo_inclusive=False)
        if self.op == ">=":
            return cu.range_mask(self.value, None, lo_inclusive=True)
        if self.op == "between":
            return cu.range_mask(self.value, self.value2)
        if self.op == "is_null":
            return cu.null_mask()
        if self.op == "is_not_null":
            return ~cu.null_mask()
        raise ValueError(f"unknown predicate op {self.op!r}")

    # -- row-at-a-time evaluation ------------------------------------------
    def matches(self, v: object) -> bool:
        """Evaluate against one already-resolved value."""
        if self.op == "is_null":
            return v is None
        if self.op == "is_not_null":
            return v is not None
        if v is None:
            return False
        if self.op == "=":
            return v == self.value
        if self.op == "!=":
            return v != self.value
        if self.op == "<":
            return v < self.value
        if self.op == "<=":
            return v <= self.value
        if self.op == ">":
            return v > self.value
        if self.op == ">=":
            return v >= self.value
        if self.op == "between":
            return self.value <= v <= self.value2
        raise ValueError(f"unknown predicate op {self.op!r}")

    def eval_row(self, values: tuple, schema: Schema) -> bool:
        return self.matches(values[schema.column_index(self.column)])

    # -- storage-index pruning ----------------------------------------------
    def can_prune(self, imcu: IMCU) -> bool:
        """True if the IMCU's min/max proves no row can match."""
        if self.op == "=":
            return imcu.prune_range(self.column, self.value, self.value)
        if self.op in ("<", "<="):
            return imcu.prune_range(self.column, None, self.value)
        if self.op in (">", ">="):
            return imcu.prune_range(self.column, self.value, None)
        if self.op == "between":
            return imcu.prune_range(self.column, self.value, self.value2)
        return False


@dataclass(slots=True)
class ScanStats:
    imcs_rows: int = 0
    rowstore_rows: int = 0
    fallback_rows: int = 0  # subset of rowstore_rows caused by SMU reconcile
    imcus_used: int = 0
    imcus_pruned: int = 0
    imcus_unusable: int = 0
    cost_seconds: float = 0.0

    def merge(self, other: "ScanStats") -> None:
        self.imcs_rows += other.imcs_rows
        self.rowstore_rows += other.rowstore_rows
        self.fallback_rows += other.fallback_rows
        self.imcus_used += other.imcus_used
        self.imcus_pruned += other.imcus_pruned
        self.imcus_unusable += other.imcus_unusable
        self.cost_seconds += other.cost_seconds


@dataclass(slots=True)
class ScanResult:
    rows: list[tuple] = field(default_factory=list)
    stats: ScanStats = field(default_factory=ScanStats)


class ScanEngine:
    """Scans tables through the IMCS with row-store reconciliation."""

    def __init__(
        self,
        imcs: Optional[InMemoryColumnStore],
        txns: TransactionView,
    ) -> None:
        self.imcs = imcs
        self.txns = txns

    # ------------------------------------------------------------------
    def scan(
        self,
        table: Table,
        snapshot_scn: SCN,
        predicates: Optional[list[Predicate]] = None,
        columns: Optional[list[str]] = None,
        partitions: Optional[list[str]] = None,
        on_imcu_matches=None,
    ) -> ScanResult:
        """Filter + project scan at a snapshot.

        Uses the IMCS for every partition enabled and populated here;
        everything else goes through the row-format path.

        ``on_imcu_matches(imcu, positions) -> bool`` is the aggregation
        push-down hook (see :mod:`repro.imcs.aggregate`): when it returns
        True the matching IMCU positions are consumed by the hook instead
        of being materialised into ``result.rows`` -- reconcile-path rows
        still come back as tuples.
        """
        predicates = predicates or []
        names = columns or [c.name for c in table.schema.live_columns]
        result = ScanResult()
        part_names = partitions if partitions is not None else list(table.partitions)
        for pname in part_names:
            partition = table.partition(pname)
            self._scan_partition(
                table, partition.object_id, snapshot_scn,
                predicates, names, result, on_imcu_matches,
            )
        return result

    # ------------------------------------------------------------------
    def _scan_partition(
        self, table, object_id, snapshot_scn, predicates, names, result,
        on_imcu_matches=None,
    ) -> None:
        segment = table.partition_by_object_id(object_id).segment
        im_segment = None
        if self.imcs is not None and self.imcs.is_enabled(object_id):
            im_segment = self.imcs.segment(object_id)
        expressions = (
            im_segment.expressions
            if im_segment is not None and len(im_segment.expressions)
            else None
        )
        resolver = RowResolver(table.schema, expressions)

        handled_dbas: set[DBA] = set()
        if im_segment is not None:
            for smu in im_segment.live_units():
                if smu.imcu.snapshot_scn > snapshot_scn:
                    # IMCU is newer than the query snapshot: unusable.
                    result.stats.imcus_unusable += 1
                    continue
                handled_dbas.update(smu.imcu.covered_dbas)
                self._scan_unit(
                    table, smu, snapshot_scn, predicates, names, result,
                    resolver, on_imcu_matches,
                )

        # Blocks with no usable columnar coverage: row-format scan.
        leftover = [d for d in segment.dbas if d not in handled_dbas]
        self._rowstore_scan_dbas(
            table, leftover, snapshot_scn, predicates, names, result,
            fallback=False, resolver=resolver,
        )

    # ------------------------------------------------------------------
    def _unit_usable(self, smu: SMU, needed: list[str]) -> bool:
        if smu.fully_invalid or smu.dropped:
            return False
        imcu = smu.imcu
        for name in needed:
            if not imcu.has_column(name) or not smu.is_column_valid(name):
                return False
        return True

    def _scan_unit(
        self, table, smu: SMU, snapshot_scn, predicates, names, result,
        resolver: RowResolver, on_imcu_matches=None,
    ) -> None:
        imcu = smu.imcu
        needed = list(dict.fromkeys(
            [p.column for p in predicates] + list(names)
        ))
        if not self._unit_usable(smu, needed):
            result.stats.imcus_unusable += 1
            self._rowstore_scan_dbas(
                table, imcu.covered_dbas, snapshot_scn,
                predicates, names, result, fallback=True, resolver=resolver,
            )
            return

        smu.pin()
        try:
            # 1. storage-index pruning
            valid = smu.valid_row_mask()
            if any(p.can_prune(imcu) for p in predicates):
                # min/max proves no *captured* row matches; invalid and
                # edge rows below may still match their current values.
                result.stats.imcus_pruned += 1
                matched_positions = np.zeros(0, dtype=np.int64)
            else:
                mask = np.ones(imcu.n_rows, dtype=bool)
                for predicate in predicates:
                    mask &= predicate.eval_mask(imcu)
                matched_positions = np.flatnonzero(mask & valid)
                result.stats.imcus_used += 1
                result.stats.imcs_rows += imcu.n_rows
                result.stats.cost_seconds += IMCS_COST_PER_ROW * imcu.n_rows

            # 2. matching valid rows: hand to the push-down hook, or
            #    project straight from the IMCU
            if on_imcu_matches is not None and on_imcu_matches(
                imcu, matched_positions
            ):
                pass  # consumed vectorially (aggregation push-down)
            else:
                result.rows.extend(
                    imcu.project_rows(matched_positions, names)
                )

            # 3. invalid rows: reconcile through the row store
            invalid_positions = np.flatnonzero(~valid)
            if invalid_positions.size:
                rowids = [imcu.rowids[int(i)] for i in invalid_positions]
                self._rowstore_fetch_rowids(
                    table, rowids, snapshot_scn, predicates, names, result,
                    resolver,
                )

            # 4. edge rows: slots added to covered blocks after the snapshot
            store = table.partition_by_object_id(imcu.object_id).segment._store
            for dba, captured in imcu.captured_slots.items():
                block = store.get_optional(dba)
                if block is None or block.used_slots <= captured:
                    continue
                rowids = [
                    RowId(dba, slot)
                    for slot in range(captured, block.used_slots)
                ]
                self._rowstore_fetch_rowids(
                    table, rowids, snapshot_scn, predicates, names, result,
                    resolver,
                )
        finally:
            smu.unpin()

    # ------------------------------------------------------------------
    def _rowstore_fetch_rowids(
        self, table, rowids, snapshot_scn, predicates, names, result,
        resolver: Optional[RowResolver] = None,
    ) -> None:
        resolver = resolver or RowResolver(table.schema)
        for rowid in rowids:
            values = table.fetch_by_rowid(rowid, snapshot_scn, self.txns)
            result.stats.rowstore_rows += 1
            result.stats.fallback_rows += 1
            result.stats.cost_seconds += ROWSTORE_COST_PER_ROW
            if values is None:
                continue
            if all(
                p.matches(resolver.value(values, p.column))
                for p in predicates
            ):
                result.rows.append(resolver.project(values, names))

    def _rowstore_scan_dbas(
        self, table, dbas, snapshot_scn, predicates, names, result, fallback,
        resolver: Optional[RowResolver] = None,
    ) -> None:
        if not dbas:
            return
        resolver = resolver or RowResolver(table.schema)
        store = table.default_partition.segment._store
        for dba in dbas:
            block = store.get_optional(dba)
            if block is None:
                continue
            if table.buffer_cache is not None:
                result.stats.cost_seconds += table.buffer_cache.touch(dba)
            for slot, chain in block.chains():
                values = visible_values(chain, snapshot_scn, self.txns)
                result.stats.rowstore_rows += 1
                if fallback:
                    result.stats.fallback_rows += 1
                result.stats.cost_seconds += ROWSTORE_COST_PER_ROW
                if values is None:
                    continue
                if all(
                    p.matches(resolver.value(values, p.column))
                    for p in predicates
                ):
                    result.rows.append(resolver.project(values, names))
