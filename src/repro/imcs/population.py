"""Population and repopulation of the IMCS.

"Data loading in the IMCS, also known as Population, is typically performed
as a background activity, and does not affect ongoing transactions and
queries" (paper, II-B).  A segment loader chunks each enabled object into
DBA ranges; background population workers build one IMCU per chunk.

Snapshot discipline differs by role and is injected via
``snapshot_capture``:

* on the **primary**, any current SCN is a valid snapshot;
* on the **standby**, the snapshot must be a *published QuerySCN*, captured
  while holding the quiesce lock in shared mode so the recovery coordinator
  cannot publish a new QuerySCN mid-capture (paper, III-A).  When the
  quiesce period is in progress the capture fails and the worker retries on
  its next step.

Repopulation heuristics (paper, II-B "a set of heuristics"): a unit is
refreshed when (a) the fraction of invalidated rows crosses a threshold, or
(b) covered blocks have grown past the captured row count ("edge" IMCU
churn from inserts -- the effect limiting the update+insert speedup in
Fig. 10), rate-limited per unit.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, Optional

from repro.common.config import IMCSConfig
from repro.common.ids import DBA, ObjectId
from repro.common.scn import SCN
from repro.imcs.imcu import IMCU
from repro.imcs.smu import SMU
from repro.imcs.store import InMemoryColumnStore, InMemorySegment
from repro.rowstore.cr import TransactionView
from repro.sim.cpu import CpuNode
from repro.sim.scheduler import Actor, Scheduler

#: Default simulated CPU seconds to populate one row into an IMCU
#: (overridable via IMCSConfig.populate_cost_per_row).
POPULATE_COST_PER_ROW = 2e-6


@dataclass(slots=True)
class PopulationTask:
    object_id: ObjectId
    dbas: tuple[DBA, ...]
    #: 'populate' for first-time loads / new extents, 'repopulate' for
    #: refreshing a stale unit.
    reason: str = "populate"
    #: Higher-priority objects populate first (Oracle's INMEMORY PRIORITY
    #: CRITICAL/HIGH/.../NONE ladder, collapsed to an integer).
    priority: int = 0


class PopulationEngine:
    """Queues and executes population work for one instance's IMCS."""

    def __init__(
        self,
        store: InMemoryColumnStore,
        txns: TransactionView,
        snapshot_capture: Callable[[object], Optional[SCN]],
        config: Optional[IMCSConfig] = None,
        dba_filter: Optional[Callable[[ObjectId, DBA], bool]] = None,
    ) -> None:
        self.store = store
        self.txns = txns
        self.snapshot_capture = snapshot_capture
        self.config = config or IMCSConfig()
        #: RAC home-location filter: this engine only builds IMCUs for
        #: blocks homed on its instance (None = build everything).  The
        #: filter runs *before* chunking, so every chunk is home-pure and
        #: invalidation routing by per-block home always finds the store
        #: that covers the block.
        self.dba_filter = dba_filter
        # priority queue: (-priority, seq) -> FIFO within a priority level
        self._heap: list[tuple[int, int, PopulationTask]] = []
        self._seq = itertools.count()
        self._inflight_dbas: set[DBA] = set()
        # statistics
        self.populations = 0
        self.repopulations = 0
        self.rows_populated = 0
        self.capacity_skips = 0
        self.quiesce_retries = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _chunk_dbas(self, segment: InMemorySegment, dbas: list[DBA]):
        rows_per_block = segment.partition.segment.rows_per_block
        blocks_per_imcu = max(
            1, self.config.imcu_target_rows // rows_per_block
        )
        for i in range(0, len(dbas), blocks_per_imcu):
            yield tuple(dbas[i : i + blocks_per_imcu])

    def schedule_object(self, object_id: ObjectId) -> int:
        """Create populate tasks for every uncovered DBA of an object.

        Returns the number of tasks enqueued.  Called on enablement and
        periodically to pick up new extents.
        """
        segment = self.store.segment(object_id)
        uncovered = [
            dba
            for dba in segment.partition.segment.dbas
            if dba not in segment.dba_to_unit
            and dba not in self._inflight_dbas
            and (
                self.dba_filter is None
                or self.dba_filter(object_id, dba)
            )
        ]
        count = 0
        for chunk in self._chunk_dbas(segment, uncovered):
            self._enqueue(
                PopulationTask(object_id, chunk, priority=segment.priority)
            )
            self._inflight_dbas.update(chunk)
            count += 1
        return count

    def _enqueue(self, task: PopulationTask) -> None:
        heapq.heappush(
            self._heap, (-task.priority, next(self._seq), task)
        )

    def schedule_all(self) -> int:
        return sum(
            self.schedule_object(segment.object_id)
            for segment in self.store.segments()
        )

    def check_repopulation(self, now: float) -> int:
        """Enqueue repopulate tasks for stale units; returns count."""
        count = 0
        for segment in self.store.segments():
            for smu in segment.live_units():
                if smu.repopulating:
                    continue
                if now - smu.last_repopulated_at < self.config.repopulate_min_interval:
                    continue
                if not self._needs_repopulation(segment, smu):
                    continue
                smu.repopulating = True
                smu.last_repopulated_at = now
                self._enqueue(
                    PopulationTask(
                        segment.object_id,
                        tuple(smu.imcu.covered_dbas),
                        reason="repopulate",
                        priority=segment.priority,
                    )
                )
                count += 1
        return count

    def _needs_repopulation(self, segment: InMemorySegment, smu: SMU) -> bool:
        if smu.fully_invalid:
            return True
        if smu.invalid_fraction >= self.config.repopulate_invalid_fraction:
            return True
        # Edge growth: captured blocks that have gained rows since the
        # snapshot force row-store fallback for the overflow rows.
        store = segment.partition.segment._store
        grown = 0
        for dba, captured in smu.imcu.captured_slots.items():
            block = store.get_optional(dba)
            if block is not None and block.used_slots > captured:
                grown += block.used_slots - captured
        if smu.imcu.n_rows == 0:
            return grown > 0
        return grown / smu.imcu.n_rows >= self.config.repopulate_invalid_fraction

    @property
    def backlog(self) -> int:
        return len(self._heap)

    def reset(self) -> None:
        """Drop all queued work (standby instance restart)."""
        self._heap.clear()
        self._inflight_dbas.clear()

    def uncovered_dbas(self) -> int:
        """Blocks of enabled objects with no columnar coverage yet."""
        count = 0
        for segment in self.store.segments():
            for dba in segment.partition.segment.dbas:
                if dba in segment.dba_to_unit:
                    continue
                if self.dba_filter is not None and not self.dba_filter(
                    segment.object_id, dba
                ):
                    continue
                count += 1
        return count

    def fully_populated(self) -> bool:
        """True when every enabled block is covered and no work is queued."""
        return not self._heap and self.uncovered_dbas() == 0

    # ------------------------------------------------------------------
    # execution (driven by PopulationWorker actors)
    # ------------------------------------------------------------------
    def run_one_task(self, owner: object) -> Optional[float]:
        """Execute one queued task.  Returns simulated cost, or None when
        there is nothing to do / the quiesce period blocked the capture."""
        if not self._heap:
            return None
        task = self._heap[0][2]
        segment = self.store._segments.get(task.object_id)
        if segment is None:  # object disabled while queued
            heapq.heappop(self._heap)
            self._inflight_dbas.difference_update(task.dbas)
            return 0.0
        snapshot = self.snapshot_capture(owner)
        if snapshot is None:
            self.quiesce_retries += 1
            return None  # quiesce period in progress; retry next step
        heapq.heappop(self._heap)
        imcu = IMCU.build(
            segment.partition.segment,
            segment.table.schema,
            segment.table.tenant,
            task.dbas,
            snapshot,
            self.txns,
            inmemory_columns=segment.inmemory_columns,
            expressions=list(segment.expressions),
            join_dictionaries=segment.join_dictionaries,
        )
        self._inflight_dbas.difference_update(task.dbas)
        cost_per_row = self.config.populate_cost_per_row
        if task.reason == "populate" and not self.store.has_capacity_for(
            imcu.memory_bytes
        ):
            self.capacity_skips += 1
            return cost_per_row * max(imcu.n_rows, 1)
        self.store.register_unit(imcu)
        if task.reason == "repopulate":
            self.repopulations += 1
        else:
            self.populations += 1
        self.rows_populated += imcu.n_rows
        return cost_per_row * max(imcu.n_rows, 1)


class PopulationWorker(Actor):
    """Background actor executing population tasks.

    Also performs the periodic housekeeping sweeps (new extents, stale
    units) so the engine needs no separate timer actor.
    """

    #: Seconds between housekeeping sweeps.
    SWEEP_INTERVAL = 0.05

    def __init__(
        self,
        engine: PopulationEngine,
        name: str = "popworker",
        node: Optional[CpuNode] = None,
        sweep: bool = False,
    ) -> None:
        self.engine = engine
        self.name = name
        self.node = node
        #: Only one worker per engine should sweep, to avoid double tasks.
        self.sweep = sweep
        self._last_sweep = -1.0

    def step(self, sched: Scheduler) -> Optional[float]:
        if self.sweep and sched.now - self._last_sweep >= self.SWEEP_INTERVAL:
            self._last_sweep = sched.now
            self.engine.schedule_all()
            self.engine.check_repopulation(sched.now)
        return self.engine.run_one_task(self)
