"""In-Memory Columnar Units.

An IMCU is a *read-only* columnar snapshot of a DBA range of one segment,
taken at a snapshot SCN under Oracle's Consistent Read model (paper, II-B:
"Population establishes a snapshot SCN for each IMCU, and the IMCU is
loaded with data consistent as of the snapshot SCN").  Once built it never
changes; staleness is tracked next to it in the SMU and fixed by
repopulation (building a replacement IMCU at a newer snapshot).

Besides the column CUs, an IMCU keeps:

* ``rowids`` -- the physical address of each captured row, for rowid
  projection and for mapping invalidation records to row positions;
* ``captured_slots`` -- per covered block, how many slots existed at the
  snapshot; rows appended later live only in the row store until
  repopulation widens the IMCU ("edge" rows, the effect that limits the
  gain in the paper's update+insert experiment, Fig. 10);
* per-column min/max (the in-memory storage index used for pruning).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.common.ids import DBA, ObjectId, RowId, TenantId
from repro.common.scn import SCN
from repro.imcs.compression import (
    ColumnCU,
    GlobalDictionary,
    SharedDictionaryCU,
    encode_column,
)
from repro.imcs.expressions import Expression
from repro.rowstore.cr import TransactionView, visible_version
from repro.rowstore.segment import Segment
from repro.rowstore.values import ColumnType, Schema

#: Bits reserved for the slot in the combined (dba, slot) index key.
_KEY_SHIFT = 32


class IMCU:
    """One read-only columnar unit."""

    _next_id = 1

    def __init__(
        self,
        object_id: ObjectId,
        tenant: TenantId,
        snapshot_scn: SCN,
        rowids: Optional[list[RowId]],
        captured_slots: dict[DBA, int],
        columns: dict[str, ColumnCU],
        n_rows: Optional[int] = None,
    ) -> None:
        self.imcu_id = IMCU._next_id
        IMCU._next_id += 1
        self.object_id = object_id
        self.tenant = tenant
        self.snapshot_scn = snapshot_scn
        # rowids=None builds a synthetic IMCU (benchmark fixtures) with no
        # per-row physical addresses; n_rows must then be given explicitly.
        if rowids is None:
            if n_rows is None:
                raise ValueError("rowids=None requires explicit n_rows")
            rowids = []
        self.rowids = rowids
        self._n_rows = n_rows if n_rows is not None else len(rowids)
        self.captured_slots = captured_slots
        self._columns = columns
        #: rowid -> position map, built on first position_of() call --
        #: scans never need it, only invalidation mapping does.
        self._row_position: Optional[dict[RowId, int]] = None
        # cached geometry (an IMCU is immutable once built)
        self._covered_dbas = tuple(captured_slots)
        self._column_names = frozenset(columns)
        #: Lazily built DBA -> (positions, slots) arrays; lets block-level
        #: invalidations expand through numpy indexing instead of a Python
        #: scan over every rowid.
        self._dba_positions: Optional[dict[DBA, np.ndarray]] = None
        self._dba_slots: Optional[dict[DBA, np.ndarray]] = None
        #: Lazily built combined (dba, slot) -> position index: one sorted
        #: key array covering every captured row, so a whole invalidation
        #: group resolves in a single searchsorted instead of one lookup
        #: per block.
        self._key_sorted: Optional[np.ndarray] = None
        self._key_positions: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        segment: Segment,
        schema: Schema,
        tenant: TenantId,
        dbas: Sequence[DBA],
        snapshot_scn: SCN,
        txns: TransactionView,
        inmemory_columns: Optional[list[str]] = None,
        expressions: Optional[Sequence[Expression]] = None,
        join_dictionaries: Optional[dict[str, GlobalDictionary]] = None,
    ) -> "IMCU":
        """Populate an IMCU for ``dbas`` at ``snapshot_scn``.

        Reads every covered row through Consistent Read, so concurrent
        transactions and not-yet-committed changes are excluded exactly as
        they would be for a query at the snapshot.
        """
        column_names = (
            inmemory_columns
            if inmemory_columns is not None
            else [c.name for c in schema.live_columns]
        )
        rowids: list[RowId] = []
        captured_slots: dict[DBA, int] = {}
        raw_columns: dict[str, list] = {name: [] for name in column_names}
        indices = {name: schema.column_index(name) for name in column_names}
        expressions = list(expressions or [])
        captured_rows: list[tuple] = []  # retained for expression eval
        store = segment._store  # segments and IMCUs share the block store
        for dba in dbas:
            block = store.get_optional(dba)
            if block is None:
                captured_slots[dba] = 0
                continue
            # Capture the prefix of *settled* slots: a slot is settled when
            # something is visible at the snapshot -- a row or a committed
            # tombstone.  A slot whose chain is empty (apply gap) or whose
            # only content is not yet visible (insert uncommitted at the
            # snapshot, or committed beyond it) ends the prefix: that slot
            # and everything after it stay row-store-only ("edge" rows)
            # until repopulation, otherwise their rows would be lost --
            # the SMU cannot invalidate rows the IMCU never captured.
            captured = 0
            for slot, chain in block.chains():
                version = visible_version(chain, snapshot_scn, txns)
                if version is None:
                    break
                captured += 1
                if version.is_delete:
                    continue
                values = version.values
                assert values is not None
                rowids.append(RowId(dba, slot))
                for name in column_names:
                    raw_columns[name].append(values[indices[name]])
                if expressions:
                    captured_rows.append(values)
            captured_slots[dba] = captured
        join_dictionaries = join_dictionaries or {}
        columns = {}
        for name in column_names:
            shared = join_dictionaries.get(name)
            if shared is not None:
                columns[name] = SharedDictionaryCU(raw_columns[name], shared)
            else:
                columns[name] = encode_column(
                    raw_columns[name],
                    schema.column(name).ctype is ColumnType.NUMBER,
                )
        for expression in expressions:
            materialised = [
                expression.evaluate(values, schema)
                for values in captured_rows
            ]
            columns[expression.name] = encode_column(
                materialised, expression.is_numeric
            )
        return cls(
            segment.object_id, tenant, snapshot_scn,
            rowids, captured_slots, columns,
        )

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def covered_dbas(self) -> tuple[DBA, ...]:
        return self._covered_dbas

    def covers_dba(self, dba: DBA) -> bool:
        return dba in self.captured_slots

    def position_of(self, rowid: RowId) -> Optional[int]:
        """Row position of a physical address, or None if not captured."""
        if self._row_position is None:
            self._row_position = {
                rid: i for i, rid in enumerate(self.rowids)
            }
        return self._row_position.get(rowid)

    def _build_dba_index(self) -> None:
        by_dba_positions: dict[DBA, list[int]] = {}
        by_dba_slots: dict[DBA, list[int]] = {}
        for position, rowid in enumerate(self.rowids):
            by_dba_positions.setdefault(rowid.dba, []).append(position)
            by_dba_slots.setdefault(rowid.dba, []).append(rowid.slot)
        self._dba_positions = {
            dba: np.asarray(positions, dtype=np.int64)
            for dba, positions in by_dba_positions.items()
        }
        self._dba_slots = {
            dba: np.asarray(slots, dtype=np.int64)
            for dba, slots in by_dba_slots.items()
        }

    def positions_for_dba(self, dba: DBA) -> np.ndarray:
        """Row positions of every captured row of ``dba`` (ascending)."""
        if self._dba_positions is None:
            self._build_dba_index()
        positions = self._dba_positions.get(dba)
        if positions is None:
            return np.zeros(0, dtype=np.int64)
        return positions

    def positions_for_slots(self, dba: DBA, slots) -> np.ndarray:
        """Row positions of the captured rows at ``(dba, slot)`` for each
        slot in ``slots``; slots the IMCU never captured are dropped."""
        if self._dba_slots is None:
            self._build_dba_index()
        captured = self._dba_slots.get(dba)
        if captured is None or captured.size == 0:
            return np.zeros(0, dtype=np.int64)
        wanted = np.asarray(slots, dtype=np.int64)
        # per-block slot arrays are ascending by construction
        idx = np.searchsorted(captured, wanted)
        idx_clipped = np.minimum(idx, captured.size - 1)
        hit = captured[idx_clipped] == wanted
        return self._dba_positions[dba][idx_clipped[hit]]

    def _build_key_index(self) -> None:
        # slot < rows_per_block << 2**32, so dba * 2**32 + slot orders
        # keys lexicographically by (dba, slot) even for negative dbas.
        keys = np.fromiter(
            ((rid.dba << _KEY_SHIFT) + rid.slot for rid in self.rowids),
            np.int64,
            len(self.rowids),
        )
        order = np.argsort(keys, kind="stable")
        self._key_sorted = keys[order]
        self._key_positions = order

    def positions_for_block_batches(self, batches) -> np.ndarray:
        """Row positions across a whole list of ``(dba, slots)`` pairs in
        one searchsorted pass over the combined (dba, slot) key index.

        Equivalent to concatenating :meth:`positions_for_slots` over the
        pairs (order aside); uncaptured slots are dropped the same way.
        """
        if len(batches) == 1:
            dba, slots = batches[0]
            return self.positions_for_slots(dba, slots)
        if self._key_sorted is None:
            self._build_key_index()
        key_sorted = self._key_sorted
        if key_sorted.size == 0:
            return np.zeros(0, dtype=np.int64)
        n_wanted = sum(len(slots) for __, slots in batches)
        wanted = np.empty(n_wanted, dtype=np.int64)
        at = 0
        for dba, slots in batches:
            end = at + len(slots)
            np.add(
                np.asarray(slots, dtype=np.int64),
                dba << _KEY_SHIFT,
                out=wanted[at:end],
            )
            at = end
        idx = np.searchsorted(key_sorted, wanted)
        idx_clipped = np.minimum(idx, key_sorted.size - 1)
        hit = key_sorted[idx_clipped] == wanted
        return self._key_positions[idx_clipped[hit]]

    @property
    def column_names(self) -> list[str]:
        return list(self._columns)

    @property
    def column_name_set(self) -> frozenset[str]:
        return self._column_names

    def has_column(self, name: str) -> bool:
        return name in self._columns

    def column(self, name: str) -> ColumnCU:
        return self._columns[name]

    @property
    def memory_bytes(self) -> int:
        payload = sum(cu.memory_bytes for cu in self._columns.values())
        rowid_bytes = 16 * self.n_rows
        return payload + rowid_bytes

    # ------------------------------------------------------------------
    # storage index
    # ------------------------------------------------------------------
    def prune_range(self, name: str, lo, hi) -> bool:
        """True if the storage index proves no row can match lo<=v<=hi."""
        cu = self._columns.get(name)
        if cu is None or cu.min_value is None:
            return cu is not None  # all-NULL column can never match
        if lo is not None and cu.max_value < lo:
            return True
        if hi is not None and cu.min_value > hi:
            return True
        return False

    # ------------------------------------------------------------------
    # projection
    # ------------------------------------------------------------------
    def project_rows(
        self, positions: np.ndarray, names: list[str]
    ) -> list[tuple]:
        """Materialise tuples for the given row positions.

        One bulk :meth:`~repro.imcs.compression.ColumnCU.take` per column
        instead of one point ``get`` per cell.
        """
        if len(positions) == 0:
            return []
        columns = [self._columns[n].take(positions) for n in names]
        if len(columns) == 1:
            return [(value,) for value in columns[0]]
        return list(zip(*columns))

    def __repr__(self) -> str:
        return (
            f"IMCU(id={self.imcu_id}, obj={self.object_id}, "
            f"rows={self.n_rows}, scn={self.snapshot_scn})"
        )
