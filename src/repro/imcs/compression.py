"""Column compression units (CUs).

"IMCUs employ techniques like data compression and encoding to efficiently
pack the IMCS" (paper, II-B).  Three encodings are provided:

* :class:`NumericCU` -- NUMBER columns as a float64 vector plus a null
  bitmap; predicates evaluate as numpy comparisons (the stand-in for
  Oracle's SIMD vector processing).
* :class:`DictionaryCU` -- VARCHAR2 columns as int32 codes into a *sorted*
  dictionary; equality resolves to one code compare, range predicates to a
  code-range compare (sortedness makes order-preserving encoding possible).
* :class:`RunLengthCU` -- run-length layer over dictionary codes, selected
  when the column has long runs; decodes to the same interface.

Every CU answers the same small interface: vectorised predicate masks,
point access for projection, min/max for the storage index, and a memory
estimate for the pool accounting.
"""

from __future__ import annotations

import bisect

from typing import Optional, Sequence

import numpy as np

#: Dictionary code used for NULL values.
NULL_CODE = -1

#: Switch to run-length encoding when the average run is at least this long.
RLE_MIN_AVG_RUN = 4.0


class ColumnCU:
    """Interface shared by every column compression unit."""

    #: Number of rows.
    n_rows: int

    def get(self, i: int) -> object:
        """Decoded value of row ``i`` (None for NULL)."""
        raise NotImplementedError

    def take(self, positions) -> list:
        """Decoded values for many row positions: one bulk gather + decode
        instead of one :meth:`get` call per cell.  ``positions`` is any
        integer sequence/ndarray; subclasses vectorise the gather."""
        return [self.get(int(i)) for i in positions]

    def eq_mask(self, value: object) -> np.ndarray:
        """Boolean mask of rows equal to ``value`` (NULLs never match)."""
        raise NotImplementedError

    def range_mask(
        self, lo: object | None, hi: object | None,
        lo_inclusive: bool = True, hi_inclusive: bool = True,
    ) -> np.ndarray:
        """Boolean mask of rows within the range (NULLs never match)."""
        raise NotImplementedError

    def null_mask(self) -> np.ndarray:
        raise NotImplementedError

    @property
    def min_value(self) -> object:
        """Smallest non-NULL value (storage index); None if all NULL."""
        raise NotImplementedError

    @property
    def max_value(self) -> object:
        raise NotImplementedError

    @property
    def memory_bytes(self) -> int:
        raise NotImplementedError


class NumericCU(ColumnCU):
    """NUMBER column: contiguous float64 vector + null bitmap."""

    def __init__(self, values: Sequence[Optional[float]]) -> None:
        self.n_rows = len(values)
        self._nulls = np.fromiter(
            (v is None for v in values), dtype=bool, count=self.n_rows
        )
        self._data = np.fromiter(
            (0.0 if v is None else float(v) for v in values),
            dtype=np.float64,
            count=self.n_rows,
        )
        # the float64 vector cannot distinguish an original int 20 from a
        # float 20.0, so int-ness is recorded at encode time -- decoded
        # tuples must compare (and sort, and repr) equal to the row-store
        # originals
        self._is_int = np.fromiter(
            (isinstance(v, int) for v in values),
            dtype=bool,
            count=self.n_rows,
        )
        present = self._data[~self._nulls]
        self._min = float(present.min()) if present.size else None
        self._max = float(present.max()) if present.size else None

    def get(self, i: int) -> object:
        if self._nulls[i]:
            return None
        value = self._data[i]
        return int(value) if self._is_int[i] else float(value)

    def take(self, positions) -> list:
        values = self._data[positions].tolist()
        nulls = self._nulls[positions].tolist()
        is_int = self._is_int[positions].tolist()
        return [
            None if null else (int(v) if as_int else v)
            for v, null, as_int in zip(values, nulls, is_int)
        ]

    def eq_mask(self, value: object) -> np.ndarray:
        if value is None:
            return np.zeros(self.n_rows, dtype=bool)
        return (self._data == float(value)) & ~self._nulls  # type: ignore[arg-type]

    def range_mask(self, lo=None, hi=None, lo_inclusive=True, hi_inclusive=True):
        mask = ~self._nulls
        if lo is not None:
            mask &= (self._data >= lo) if lo_inclusive else (self._data > lo)
        if hi is not None:
            mask &= (self._data <= hi) if hi_inclusive else (self._data < hi)
        return mask

    def null_mask(self) -> np.ndarray:
        return self._nulls.copy()

    @property
    def min_value(self):
        return self._min

    @property
    def max_value(self):
        return self._max

    @property
    def memory_bytes(self) -> int:
        return int(
            self._data.nbytes + self._nulls.nbytes + self._is_int.nbytes
        )


class DictionaryCU(ColumnCU):
    """VARCHAR2 column: int32 codes into a sorted dictionary."""

    def __init__(self, values: Sequence[Optional[str]]) -> None:
        self.n_rows = len(values)
        distinct = sorted({v for v in values if v is not None})
        self._dictionary: list[str] = distinct
        code_of = {v: i for i, v in enumerate(distinct)}
        self._codes = np.fromiter(
            (NULL_CODE if v is None else code_of[v] for v in values),
            dtype=np.int32,
            count=self.n_rows,
        )

    @property
    def dictionary(self) -> list[str]:
        return list(self._dictionary)

    @property
    def cardinality(self) -> int:
        return len(self._dictionary)

    def code_for(self, value: str) -> Optional[int]:
        """Exact-match code, or None when the value is not in this CU."""
        i = bisect.bisect_left(self._dictionary, value)
        if i < len(self._dictionary) and self._dictionary[i] == value:
            return i
        return None

    def get(self, i: int) -> object:
        code = self._codes[i]
        return None if code == NULL_CODE else self._dictionary[code]

    def take(self, positions) -> list:
        dictionary = self._dictionary
        return [
            None if code == NULL_CODE else dictionary[code]
            for code in self._codes[positions].tolist()
        ]

    def eq_mask(self, value: object) -> np.ndarray:
        if value is None or not isinstance(value, str):
            return np.zeros(self.n_rows, dtype=bool)
        code = self.code_for(value)
        if code is None:
            return np.zeros(self.n_rows, dtype=bool)
        return self._codes == code

    def range_mask(self, lo=None, hi=None, lo_inclusive=True, hi_inclusive=True):
        return _range_mask_over_codes(
            self._codes, self._dictionary, lo, hi, lo_inclusive, hi_inclusive
        )

    def null_mask(self) -> np.ndarray:
        return self._codes == NULL_CODE

    @property
    def min_value(self):
        return self._dictionary[0] if self._dictionary else None

    @property
    def max_value(self):
        return self._dictionary[-1] if self._dictionary else None

    @property
    def memory_bytes(self) -> int:
        dict_bytes = sum(len(v) for v in self._dictionary) + 8 * len(self._dictionary)
        return int(self._codes.nbytes) + dict_bytes


class RunLengthCU(ColumnCU):
    """Run-length envelope over a dictionary CU.

    Stores (run start offsets, run codes); decodes lazily to a full code
    vector for mask evaluation (cached), so it trades memory for a one-time
    decode cost, like Oracle's RLE within IMCU pieces.
    """

    def __init__(self, base: DictionaryCU) -> None:
        codes = base._codes
        self.n_rows = base.n_rows
        self._dictionary = base._dictionary
        if self.n_rows:
            change = np.flatnonzero(np.diff(codes)) + 1
            starts = np.concatenate(([0], change)).astype(np.int64)
        else:
            starts = np.zeros(0, dtype=np.int64)
        self._run_starts = starts
        self._run_codes = codes[starts] if self.n_rows else codes
        self._decoded: Optional[np.ndarray] = None
        self._base_for_lookup = base  # reuse dictionary search helpers

    @property
    def n_runs(self) -> int:
        return len(self._run_starts)

    def _codes_vector(self) -> np.ndarray:
        if self._decoded is None:
            lengths = np.diff(
                np.concatenate((self._run_starts, [self.n_rows]))
            )
            self._decoded = np.repeat(self._run_codes, lengths).astype(np.int32)
        return self._decoded

    def get(self, i: int) -> object:
        idx = int(np.searchsorted(self._run_starts, i, side="right")) - 1
        code = self._run_codes[idx]
        return None if code == NULL_CODE else self._dictionary[code]

    def take(self, positions) -> list:
        dictionary = self._dictionary
        return [
            None if code == NULL_CODE else dictionary[code]
            for code in self._codes_vector()[positions].tolist()
        ]

    def eq_mask(self, value: object) -> np.ndarray:
        if value is None or not isinstance(value, str):
            return np.zeros(self.n_rows, dtype=bool)
        code = self._base_for_lookup.code_for(value)
        if code is None:
            return np.zeros(self.n_rows, dtype=bool)
        return self._codes_vector() == code

    def range_mask(self, lo=None, hi=None, lo_inclusive=True, hi_inclusive=True):
        return _range_mask_over_codes(
            self._codes_vector(), self._dictionary,
            lo, hi, lo_inclusive, hi_inclusive,
        )

    def null_mask(self) -> np.ndarray:
        return self._codes_vector() == NULL_CODE

    @property
    def min_value(self):
        return self._dictionary[0] if self._dictionary else None

    @property
    def max_value(self):
        return self._dictionary[-1] if self._dictionary else None

    @property
    def memory_bytes(self) -> int:
        dict_bytes = sum(len(v) for v in self._dictionary) + 8 * len(self._dictionary)
        return int(self._run_starts.nbytes + self._run_codes.nbytes) + dict_bytes


def _range_mask_over_codes(
    codes: np.ndarray,
    dictionary: list[str],
    lo,
    hi,
    lo_inclusive: bool,
    hi_inclusive: bool,
) -> np.ndarray:
    """Range predicate over order-preserving dictionary codes.

    Because the dictionary is sorted, a value range maps to a contiguous
    code range, and the comparison runs on the int32 code vector.
    """
    lo_code = 0
    hi_code = len(dictionary) - 1
    if lo is not None:
        lo_code = (
            bisect.bisect_left(dictionary, lo)
            if lo_inclusive
            else bisect.bisect_right(dictionary, lo)
        )
    if hi is not None:
        hi_code = (
            bisect.bisect_right(dictionary, hi) - 1
            if hi_inclusive
            else bisect.bisect_left(dictionary, hi) - 1
        )
    mask = (codes >= lo_code) & (codes <= hi_code)
    mask &= codes != NULL_CODE
    return mask


def encode_column(values: Sequence, is_numeric: bool) -> ColumnCU:
    """Pick an encoding for one column of one IMCU.

    NUMBER columns always use the numeric vector.  VARCHAR2 columns use
    dictionary encoding, upgraded to RLE when the average run length makes
    it profitable.
    """
    if is_numeric:
        return NumericCU(values)
    base = DictionaryCU(values)
    if base.n_rows:
        rle = RunLengthCU(base)
        if base.n_rows / max(rle.n_runs, 1) >= RLE_MIN_AVG_RUN:
            return rle
    return base

# ----------------------------------------------------------------------
# join-group support (see repro.imcs.join_groups)
# ----------------------------------------------------------------------
class GlobalDictionary:
    """Append-only shared dictionary: value <-> code, stable forever."""

    def __init__(self) -> None:
        self._values: list[str] = []
        self._code_of: dict[str, int] = {}

    def encode(self, value: str) -> int:
        """Code for ``value``, assigning a fresh one if unseen."""
        code = self._code_of.get(value)
        if code is None:
            code = len(self._values)
            self._values.append(value)
            self._code_of[value] = code
        return code

    def lookup(self, value: str) -> Optional[int]:
        """Code for ``value`` or None -- never assigns."""
        return self._code_of.get(value)

    def decode(self, code: int) -> str:
        return self._values[code]

    def __len__(self) -> int:
        return len(self._values)


class SharedDictionaryCU(ColumnCU):
    """A VARCHAR2 CU encoded against a join group's global dictionary.

    Codes are assignment-ordered (not value-ordered), so range predicates
    scan the dictionary for qualifying codes instead of comparing code
    ranges; equality stays a single vectorised compare.
    """

    def __init__(self, values: Sequence[Optional[str]], dictionary: GlobalDictionary) -> None:
        self.n_rows = len(values)
        self.dictionary = dictionary
        self._codes = np.fromiter(
            (
                NULL_CODE if v is None else dictionary.encode(v)
                for v in values
            ),
            dtype=np.int64,
            count=self.n_rows,
        )
        present = [v for v in values if v is not None]
        self._min = min(present) if present else None
        self._max = max(present) if present else None

    @property
    def codes(self) -> np.ndarray:
        return self._codes

    def get(self, i: int) -> object:
        code = self._codes[i]
        return None if code == NULL_CODE else self.dictionary.decode(int(code))

    def take(self, positions) -> list:
        decode = self.dictionary.decode
        return [
            None if code == NULL_CODE else decode(code)
            for code in self._codes[positions].tolist()
        ]

    def eq_mask(self, value: object) -> np.ndarray:
        if not isinstance(value, str):
            return np.zeros(self.n_rows, dtype=bool)
        code = self.dictionary.lookup(value)
        if code is None:
            return np.zeros(self.n_rows, dtype=bool)
        return self._codes == code

    def range_mask(self, lo=None, hi=None, lo_inclusive=True, hi_inclusive=True):
        def qualifies(value: str) -> bool:
            if lo is not None:
                if lo_inclusive and value < lo:
                    return False
                if not lo_inclusive and value <= lo:
                    return False
            if hi is not None:
                if hi_inclusive and value > hi:
                    return False
                if not hi_inclusive and value >= hi:
                    return False
            return True

        wanted = np.fromiter(
            (
                code
                for code in range(len(self.dictionary))
                if qualifies(self.dictionary.decode(code))
            ),
            dtype=np.int64,
        )
        mask = np.isin(self._codes, wanted)
        mask &= self._codes != NULL_CODE
        return mask

    def null_mask(self) -> np.ndarray:
        return self._codes == NULL_CODE

    @property
    def min_value(self):
        return self._min

    @property
    def max_value(self):
        return self._max

    @property
    def memory_bytes(self) -> int:
        return int(self._codes.nbytes)  # the dictionary is shared
