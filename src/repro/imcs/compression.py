"""Column compression units (CUs).

"IMCUs employ techniques like data compression and encoding to efficiently
pack the IMCS" (paper, II-B).  Three encodings are provided:

* :class:`NumericCU` -- NUMBER columns as a float64 vector plus a null
  bitmap; predicates evaluate as numpy comparisons (the stand-in for
  Oracle's SIMD vector processing).
* :class:`DictionaryCU` -- VARCHAR2 columns as int32 codes into a *sorted*
  dictionary; equality resolves to one code compare, range predicates to a
  code-range compare (sortedness makes order-preserving encoding possible).
* :class:`RunLengthCU` -- run-length layer over dictionary codes; all
  kernels evaluate *per run* and expand only matching runs, so no decoded
  n_rows code vector is ever materialised (run-skipping).

Every CU answers the same small interface: vectorised predicate masks,
bulk decode for projection, encoded-domain aggregation
(:meth:`ColumnCU.stats_for_positions`), min/max for the storage index, and
a memory estimate for the pool accounting.

CUs are also *reconstructible from raw buffers*
(:func:`export_cu` / :func:`cu_from_export`): the process-parallel scan
backend ships the numpy arrays through ``multiprocessing.shared_memory``
and rebuilds identical CU objects in worker processes, and benchmarks use
the same constructors to assemble large synthetic IMCUs without a per-row
encode loop.
"""

from __future__ import annotations

import bisect

from typing import Optional, Sequence

import numpy as np

#: Dictionary code used for NULL values.
NULL_CODE = -1

#: Switch to run-length encoding when the average run is at least this long.
RLE_MIN_AVG_RUN = 4.0

#: Expand matching RLE runs with per-run slice writes (run-skipping) when
#: at most this many runs match; beyond it one vectorised ``np.repeat`` of
#: the run mask is cheaper than the Python loop.
RLE_SLICE_EXPAND_MAX_RUNS = 64


class ColumnCU:
    """Interface shared by every column compression unit."""

    #: Number of rows.
    n_rows: int

    def get(self, i: int) -> object:
        """Decoded value of row ``i`` (None for NULL)."""
        raise NotImplementedError

    def take(self, positions) -> list:
        """Decoded values for many row positions: one bulk gather + decode
        instead of one :meth:`get` call per cell.  ``positions`` is any
        integer sequence/ndarray; subclasses vectorise the gather."""
        return [self.get(int(i)) for i in positions]

    def eq_mask(self, value: object) -> np.ndarray:
        """Boolean mask of rows equal to ``value`` (NULLs never match)."""
        raise NotImplementedError

    def range_mask(
        self, lo: object | None, hi: object | None,
        lo_inclusive: bool = True, hi_inclusive: bool = True,
    ) -> np.ndarray:
        """Boolean mask of rows within the range (NULLs never match)."""
        raise NotImplementedError

    def null_mask(self) -> np.ndarray:
        raise NotImplementedError

    def stats_for_positions(
        self, positions
    ) -> tuple[int, float, object, object]:
        """Encoded-domain aggregation over the given row positions.

        Returns ``(non_null_count, total, minimum, maximum)``; ``total``
        is 0.0 for non-numeric columns.  Subclasses compute this from
        codes / run lengths without decoding; this fallback folds over one
        bulk :meth:`take`.
        """
        count = 0
        total = 0.0
        minimum: object = None
        maximum: object = None
        for value in self.take(positions):
            if value is None:
                continue
            count += 1
            if isinstance(value, (int, float)):
                total += value
            if minimum is None or value < minimum:
                minimum = value
            if maximum is None or value > maximum:
                maximum = value
        return count, total, minimum, maximum

    @property
    def min_value(self) -> object:
        """Smallest non-NULL value (storage index); None if all NULL."""
        raise NotImplementedError

    @property
    def max_value(self) -> object:
        raise NotImplementedError

    @property
    def memory_bytes(self) -> int:
        raise NotImplementedError


class NumericCU(ColumnCU):
    """NUMBER column: contiguous float64 vector + null bitmap."""

    def __init__(self, values: Sequence[Optional[float]]) -> None:
        self.n_rows = len(values)
        self._nulls = np.fromiter(
            (v is None for v in values), dtype=bool, count=self.n_rows
        )
        self._data = np.fromiter(
            (0.0 if v is None else float(v) for v in values),
            dtype=np.float64,
            count=self.n_rows,
        )
        # the float64 vector cannot distinguish an original int 20 from a
        # float 20.0, so int-ness is recorded at encode time -- decoded
        # tuples must compare (and sort, and repr) equal to the row-store
        # originals
        self._is_int = np.fromiter(
            (isinstance(v, int) for v in values),
            dtype=bool,
            count=self.n_rows,
        )
        self._finish_init()

    @classmethod
    def from_arrays(
        cls,
        data: np.ndarray,
        nulls: Optional[np.ndarray] = None,
        is_int: Optional[np.ndarray] = None,
    ) -> "NumericCU":
        """Build directly from encoded buffers (no per-row Python)."""
        cu = cls.__new__(cls)
        cu._data = np.ascontiguousarray(data, dtype=np.float64)
        cu.n_rows = int(cu._data.shape[0])
        cu._nulls = (
            np.zeros(cu.n_rows, dtype=bool)
            if nulls is None
            else np.ascontiguousarray(nulls, dtype=bool)
        )
        cu._is_int = (
            np.zeros(cu.n_rows, dtype=bool)
            if is_int is None
            else np.ascontiguousarray(is_int, dtype=bool)
        )
        cu._finish_init()
        return cu

    def _finish_init(self) -> None:
        present = self._data[~self._nulls]
        self._min = float(present.min()) if present.size else None
        self._max = float(present.max()) if present.size else None

    def get(self, i: int) -> object:
        if self._nulls[i]:
            return None
        value = self._data[i]
        return int(value) if self._is_int[i] else float(value)

    def take(self, positions) -> list:
        positions = np.asarray(positions, dtype=np.int64)
        values = self._data[positions]
        out = np.empty(values.size, dtype=object)
        out[:] = values.tolist()  # Python floats, not np.float64
        ints = self._is_int[positions]
        if ints.any():
            out[ints] = values[ints].astype(np.int64).tolist()
        nulls = self._nulls[positions]
        if nulls.any():
            out[nulls] = None
        return out.tolist()

    def eq_mask(self, value: object) -> np.ndarray:
        if value is None or isinstance(value, str):
            return np.zeros(self.n_rows, dtype=bool)
        try:
            needle = float(value)
        except (TypeError, ValueError):
            # non-numeric comparison value: a NUMBER row can never equal it
            return np.zeros(self.n_rows, dtype=bool)
        return (self._data == needle) & ~self._nulls

    def range_mask(self, lo=None, hi=None, lo_inclusive=True, hi_inclusive=True):
        mask = ~self._nulls
        if lo is not None:
            mask &= (self._data >= lo) if lo_inclusive else (self._data > lo)
        if hi is not None:
            mask &= (self._data <= hi) if hi_inclusive else (self._data < hi)
        return mask

    def null_mask(self) -> np.ndarray:
        return self._nulls.copy()

    def stats_for_positions(self, positions):
        positions = np.asarray(positions, dtype=np.int64)
        values = self._data[positions]
        nulls = self._nulls[positions]
        present = values[~nulls] if nulls.any() else values
        if present.size == 0:
            return 0, 0.0, None, None
        return (
            int(present.size),
            float(present.sum()),
            float(present.min()),
            float(present.max()),
        )

    @property
    def min_value(self):
        return self._min

    @property
    def max_value(self):
        return self._max

    @property
    def memory_bytes(self) -> int:
        return int(
            self._data.nbytes + self._nulls.nbytes + self._is_int.nbytes
        )


def _dictionary_bytes(dictionary: list[str]) -> int:
    return sum(len(v) for v in dictionary) + 8 * len(dictionary)


def _decode_table(dictionary: Sequence[str]) -> np.ndarray:
    """Object-array decode table with ``None`` in the last slot, so a
    fancy-indexed gather maps ``NULL_CODE`` (-1) straight to None."""
    table = np.empty(len(dictionary) + 1, dtype=object)
    if len(dictionary):
        table[:-1] = dictionary
    table[-1] = None
    return table


def _sorted_code_for(dictionary: list[str], value: str) -> Optional[int]:
    i = bisect.bisect_left(dictionary, value)
    if i < len(dictionary) and dictionary[i] == value:
        return i
    return None


def _code_bounds(
    dictionary: list[str], lo, hi, lo_inclusive: bool, hi_inclusive: bool
) -> tuple[int, int]:
    """Map a value range to a contiguous code range of a sorted dictionary."""
    lo_code = 0
    hi_code = len(dictionary) - 1
    if lo is not None:
        lo_code = (
            bisect.bisect_left(dictionary, lo)
            if lo_inclusive
            else bisect.bisect_right(dictionary, lo)
        )
    if hi is not None:
        hi_code = (
            bisect.bisect_right(dictionary, hi) - 1
            if hi_inclusive
            else bisect.bisect_left(dictionary, hi) - 1
        )
    return lo_code, hi_code


class DictionaryCU(ColumnCU):
    """VARCHAR2 column: int32 codes into a sorted dictionary."""

    def __init__(self, values: Sequence[Optional[str]]) -> None:
        self.n_rows = len(values)
        distinct = sorted({v for v in values if v is not None})
        self._dictionary: list[str] = distinct
        code_of = {v: i for i, v in enumerate(distinct)}
        self._codes = np.fromiter(
            (NULL_CODE if v is None else code_of[v] for v in values),
            dtype=np.int32,
            count=self.n_rows,
        )
        self._decode_cache: Optional[np.ndarray] = None

    @classmethod
    def from_codes(
        cls, codes: np.ndarray, dictionary: Sequence[str]
    ) -> "DictionaryCU":
        """Build directly from an encoded code vector and its *sorted*
        dictionary (no per-row Python)."""
        cu = cls.__new__(cls)
        cu._codes = np.ascontiguousarray(codes, dtype=np.int32)
        cu.n_rows = int(cu._codes.shape[0])
        cu._dictionary = list(dictionary)
        cu._decode_cache = None
        return cu

    @property
    def dictionary(self) -> list[str]:
        return list(self._dictionary)

    @property
    def cardinality(self) -> int:
        return len(self._dictionary)

    def code_for(self, value: str) -> Optional[int]:
        """Exact-match code, or None when the value is not in this CU."""
        return _sorted_code_for(self._dictionary, value)

    def _decode_objects(self) -> np.ndarray:
        if self._decode_cache is None:
            self._decode_cache = _decode_table(self._dictionary)
        return self._decode_cache

    def get(self, i: int) -> object:
        code = self._codes[i]
        return None if code == NULL_CODE else self._dictionary[code]

    def take(self, positions) -> list:
        positions = np.asarray(positions, dtype=np.int64)
        # NULL_CODE (-1) indexes the table's trailing None slot
        return self._decode_objects()[self._codes[positions]].tolist()

    def eq_mask(self, value: object) -> np.ndarray:
        if value is None or not isinstance(value, str):
            return np.zeros(self.n_rows, dtype=bool)
        code = self.code_for(value)
        if code is None:
            return np.zeros(self.n_rows, dtype=bool)
        return self._codes == code

    def range_mask(self, lo=None, hi=None, lo_inclusive=True, hi_inclusive=True):
        return _range_mask_over_codes(
            self._codes, self._dictionary, lo, hi, lo_inclusive, hi_inclusive
        )

    def null_mask(self) -> np.ndarray:
        return self._codes == NULL_CODE

    def stats_for_positions(self, positions):
        positions = np.asarray(positions, dtype=np.int64)
        codes = self._codes[positions]
        present = codes[codes != NULL_CODE]
        if present.size == 0:
            return 0, 0.0, None, None
        # codes are order-preserving: min/max decode exactly two values
        return (
            int(present.size),
            0.0,
            self._dictionary[int(present.min())],
            self._dictionary[int(present.max())],
        )

    @property
    def min_value(self):
        return self._dictionary[0] if self._dictionary else None

    @property
    def max_value(self):
        return self._dictionary[-1] if self._dictionary else None

    @property
    def memory_bytes(self) -> int:
        return int(self._codes.nbytes) + _dictionary_bytes(self._dictionary)


class RunLengthCU(ColumnCU):
    """Run-length envelope over sorted-dictionary codes.

    Stores (run start offsets, run codes, run lengths) only.  Every kernel
    evaluates in the *run domain*: predicate masks compare the n_runs code
    vector and expand just the matching runs into the row mask
    (run-skipping), ``take`` binary-searches run starts, and aggregation
    folds run codes -- no decoded n_rows code vector is ever allocated, so
    ``memory_bytes`` is the true pool footprint.
    """

    def __init__(self, base: DictionaryCU) -> None:
        codes = base._codes
        n_rows = base.n_rows
        if n_rows:
            change = np.flatnonzero(np.diff(codes)) + 1
            starts = np.concatenate(([0], change)).astype(np.int64)
            run_codes = codes[starts].astype(np.int32)
        else:
            starts = np.zeros(0, dtype=np.int64)
            run_codes = np.zeros(0, dtype=np.int32)
        self._install_runs(starts, run_codes, n_rows, base._dictionary)

    @classmethod
    def from_runs(
        cls,
        run_starts: np.ndarray,
        run_codes: np.ndarray,
        n_rows: int,
        dictionary: Sequence[str],
    ) -> "RunLengthCU":
        """Build directly from run buffers and a *sorted* dictionary."""
        cu = cls.__new__(cls)
        cu._install_runs(
            np.ascontiguousarray(run_starts, dtype=np.int64),
            np.ascontiguousarray(run_codes, dtype=np.int32),
            int(n_rows),
            list(dictionary),
        )
        return cu

    def _install_runs(
        self,
        starts: np.ndarray,
        run_codes: np.ndarray,
        n_rows: int,
        dictionary: list[str],
    ) -> None:
        self.n_rows = n_rows
        self._dictionary = dictionary
        self._run_starts = starts
        self._run_codes = run_codes
        self._run_lengths = np.diff(
            np.concatenate((starts, [n_rows]))
        ).astype(np.int64)
        self._decode_cache: Optional[np.ndarray] = None

    @property
    def n_runs(self) -> int:
        return len(self._run_starts)

    def run_view(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(starts, lengths, codes) -- read-only run-domain view."""
        return self._run_starts, self._run_lengths, self._run_codes

    def _decode_objects(self) -> np.ndarray:
        if self._decode_cache is None:
            self._decode_cache = _decode_table(self._dictionary)
        return self._decode_cache

    def _expand_runs(self, run_mask: np.ndarray) -> np.ndarray:
        """Row mask from a run mask, touching only matching runs."""
        matching = np.flatnonzero(run_mask)
        if matching.size == 0:
            return np.zeros(self.n_rows, dtype=bool)
        if matching.size <= RLE_SLICE_EXPAND_MAX_RUNS:
            out = np.zeros(self.n_rows, dtype=bool)
            starts = self._run_starts
            lengths = self._run_lengths
            for r in matching.tolist():
                start = starts[r]
                out[start:start + lengths[r]] = True
            return out
        return np.repeat(run_mask, self._run_lengths)

    def _positions_to_codes(self, positions) -> np.ndarray:
        positions = np.asarray(positions, dtype=np.int64)
        idx = np.searchsorted(self._run_starts, positions, side="right") - 1
        return self._run_codes[idx]

    def get(self, i: int) -> object:
        idx = int(np.searchsorted(self._run_starts, i, side="right")) - 1
        code = self._run_codes[idx]
        return None if code == NULL_CODE else self._dictionary[code]

    def take(self, positions) -> list:
        return self._decode_objects()[
            self._positions_to_codes(positions)
        ].tolist()

    def eq_mask(self, value: object) -> np.ndarray:
        if value is None or not isinstance(value, str):
            return np.zeros(self.n_rows, dtype=bool)
        code = _sorted_code_for(self._dictionary, value)
        if code is None:
            return np.zeros(self.n_rows, dtype=bool)
        return self._expand_runs(self._run_codes == code)

    def range_mask(self, lo=None, hi=None, lo_inclusive=True, hi_inclusive=True):
        lo_code, hi_code = _code_bounds(
            self._dictionary, lo, hi, lo_inclusive, hi_inclusive
        )
        run_mask = (self._run_codes >= lo_code) & (self._run_codes <= hi_code)
        run_mask &= self._run_codes != NULL_CODE
        return self._expand_runs(run_mask)

    def null_mask(self) -> np.ndarray:
        return self._expand_runs(self._run_codes == NULL_CODE)

    def stats_for_positions(self, positions):
        codes = self._positions_to_codes(positions)
        present = codes[codes != NULL_CODE]
        if present.size == 0:
            return 0, 0.0, None, None
        return (
            int(present.size),
            0.0,
            self._dictionary[int(present.min())],
            self._dictionary[int(present.max())],
        )

    @property
    def min_value(self):
        return self._dictionary[0] if self._dictionary else None

    @property
    def max_value(self):
        return self._dictionary[-1] if self._dictionary else None

    @property
    def memory_bytes(self) -> int:
        run_bytes = int(
            self._run_starts.nbytes
            + self._run_codes.nbytes
            + self._run_lengths.nbytes
        )
        return run_bytes + _dictionary_bytes(self._dictionary)


def _range_mask_over_codes(
    codes: np.ndarray,
    dictionary: list[str],
    lo,
    hi,
    lo_inclusive: bool,
    hi_inclusive: bool,
) -> np.ndarray:
    """Range predicate over order-preserving dictionary codes.

    Because the dictionary is sorted, a value range maps to a contiguous
    code range, and the comparison runs on the int32 code vector.
    """
    lo_code, hi_code = _code_bounds(
        dictionary, lo, hi, lo_inclusive, hi_inclusive
    )
    mask = (codes >= lo_code) & (codes <= hi_code)
    mask &= codes != NULL_CODE
    return mask


def encode_column(values: Sequence, is_numeric: bool) -> ColumnCU:
    """Pick an encoding for one column of one IMCU.

    NUMBER columns always use the numeric vector.  VARCHAR2 columns use
    dictionary encoding, upgraded to RLE when the average run length makes
    it profitable.
    """
    if is_numeric:
        return NumericCU(values)
    base = DictionaryCU(values)
    if base.n_rows:
        rle = RunLengthCU(base)
        if base.n_rows / max(rle.n_runs, 1) >= RLE_MIN_AVG_RUN:
            return rle
    return base

# ----------------------------------------------------------------------
# join-group support (see repro.imcs.join_groups)
# ----------------------------------------------------------------------
class GlobalDictionary:
    """Append-only shared dictionary: value <-> code, stable forever."""

    def __init__(self) -> None:
        self._values: list[str] = []
        self._code_of: dict[str, int] = {}

    def encode(self, value: str) -> int:
        """Code for ``value``, assigning a fresh one if unseen."""
        code = self._code_of.get(value)
        if code is None:
            code = len(self._values)
            self._values.append(value)
            self._code_of[value] = code
        return code

    def lookup(self, value: str) -> Optional[int]:
        """Code for ``value`` or None -- never assigns."""
        return self._code_of.get(value)

    def decode(self, code: int) -> str:
        return self._values[code]

    def snapshot(self) -> list[str]:
        """Copy of the current code -> value list (codes are stable, so a
        prefix snapshot decodes every code assigned so far)."""
        return list(self._values)

    @classmethod
    def from_values(cls, values: Sequence[str]) -> "GlobalDictionary":
        dictionary = cls()
        for value in values:
            dictionary.encode(value)
        return dictionary

    def __len__(self) -> int:
        return len(self._values)


class SharedDictionaryCU(ColumnCU):
    """A VARCHAR2 CU encoded against a join group's global dictionary.

    Codes are assignment-ordered (not value-ordered), so range predicates
    compute the qualifying-code set with one vectorised comparison over
    the dictionary's decode table (cardinality-bounded) instead of a
    per-row decode; equality stays a single vectorised compare.
    """

    def __init__(self, values: Sequence[Optional[str]], dictionary: GlobalDictionary) -> None:
        self.n_rows = len(values)
        self.dictionary = dictionary
        self._codes = np.fromiter(
            (
                NULL_CODE if v is None else dictionary.encode(v)
                for v in values
            ),
            dtype=np.int64,
            count=self.n_rows,
        )
        present = [v for v in values if v is not None]
        self._min = min(present) if present else None
        self._max = max(present) if present else None
        self._decode_cache: Optional[np.ndarray] = None
        self._decode_len = -1

    @classmethod
    def from_codes(
        cls, codes: np.ndarray, values: Sequence[str]
    ) -> "SharedDictionaryCU":
        """Rebuild from an encoded code vector plus the global dictionary's
        value list (shared-memory reconstruction path)."""
        cu = cls.__new__(cls)
        cu._codes = np.ascontiguousarray(codes, dtype=np.int64)
        cu.n_rows = int(cu._codes.shape[0])
        cu.dictionary = GlobalDictionary.from_values(values)
        cu._decode_cache = None
        cu._decode_len = -1
        present = cu._codes[cu._codes != NULL_CODE]
        if present.size:
            table = cu._dictionary_objects()
            uniq = np.unique(present)
            decoded = table[uniq].tolist()
            cu._min = min(decoded)
            cu._max = max(decoded)
        else:
            cu._min = None
            cu._max = None
        return cu

    def _dictionary_objects(self) -> np.ndarray:
        """Object-array over the global dictionary's values; refreshed when
        the (append-only) dictionary has grown."""
        n = len(self.dictionary)
        if self._decode_cache is None or self._decode_len != n:
            table = np.empty(n, dtype=object)
            if n:
                table[:] = self.dictionary._values[:n]
            self._decode_cache = table
            self._decode_len = n
        return self._decode_cache

    @property
    def codes(self) -> np.ndarray:
        return self._codes

    def get(self, i: int) -> object:
        code = self._codes[i]
        return None if code == NULL_CODE else self.dictionary.decode(int(code))

    def take(self, positions) -> list:
        positions = np.asarray(positions, dtype=np.int64)
        codes = self._codes[positions]
        table = self._dictionary_objects()
        if table.size == 0:
            return [None] * int(codes.size)
        out = table[codes]  # NULL_CODE (-1) wraps; fixed up below
        nulls = codes == NULL_CODE
        if nulls.any():
            out[nulls] = None
        return out.tolist()

    def eq_mask(self, value: object) -> np.ndarray:
        if not isinstance(value, str):
            return np.zeros(self.n_rows, dtype=bool)
        code = self.dictionary.lookup(value)
        if code is None:
            return np.zeros(self.n_rows, dtype=bool)
        return self._codes == code

    def range_mask(self, lo=None, hi=None, lo_inclusive=True, hi_inclusive=True):
        table = self._dictionary_objects()
        if table.size == 0:
            return np.zeros(self.n_rows, dtype=bool)
        qualifies = np.ones(table.size, dtype=bool)
        if lo is not None:
            qualifies &= (table >= lo) if lo_inclusive else (table > lo)
        if hi is not None:
            qualifies &= (table <= hi) if hi_inclusive else (table < hi)
        wanted = np.flatnonzero(qualifies)
        if wanted.size == 0:
            return np.zeros(self.n_rows, dtype=bool)
        # wanted codes are all >= 0, so NULL_CODE rows can never match
        return np.isin(self._codes, wanted)

    def null_mask(self) -> np.ndarray:
        return self._codes == NULL_CODE

    def stats_for_positions(self, positions):
        positions = np.asarray(positions, dtype=np.int64)
        codes = self._codes[positions]
        present = codes[codes != NULL_CODE]
        if present.size == 0:
            return 0, 0.0, None, None
        # assignment-ordered codes: min/max decode the unique code set
        # (cardinality-bounded), never the rows
        uniq = np.unique(present)
        decoded = self._dictionary_objects()[uniq].tolist()
        return int(present.size), 0.0, min(decoded), max(decoded)

    @property
    def min_value(self):
        return self._min

    @property
    def max_value(self):
        return self._max

    @property
    def memory_bytes(self) -> int:
        return int(self._codes.nbytes)  # the dictionary is shared


# ----------------------------------------------------------------------
# buffer export / reconstruction (shared-memory scan workers, fast build)
# ----------------------------------------------------------------------
def export_cu(cu: ColumnCU) -> tuple[str, dict[str, np.ndarray], dict]:
    """Describe a CU as ``(kind, arrays, meta)``.

    ``arrays`` maps buffer names to numpy arrays (shareable across
    processes); ``meta`` holds the small picklable remainder (dictionary
    value lists, row counts).  :func:`cu_from_export` inverts this.
    """
    if isinstance(cu, NumericCU):
        return (
            "numeric",
            {"data": cu._data, "nulls": cu._nulls, "is_int": cu._is_int},
            {},
        )
    if isinstance(cu, RunLengthCU):
        return (
            "rle",
            {"run_starts": cu._run_starts, "run_codes": cu._run_codes},
            {"dictionary": cu._dictionary, "n_rows": cu.n_rows},
        )
    if isinstance(cu, DictionaryCU):
        return (
            "dictionary",
            {"codes": cu._codes},
            {"dictionary": cu._dictionary},
        )
    if isinstance(cu, SharedDictionaryCU):
        return (
            "shared",
            {"codes": cu._codes},
            {"values": cu.dictionary.snapshot()},
        )
    raise TypeError(f"cannot export {type(cu).__name__}")


def cu_from_export(
    kind: str, arrays: dict[str, np.ndarray], meta: dict
) -> ColumnCU:
    """Rebuild a CU from :func:`export_cu` output (zero-copy over the
    provided arrays)."""
    if kind == "numeric":
        return NumericCU.from_arrays(
            arrays["data"], arrays["nulls"], arrays["is_int"]
        )
    if kind == "rle":
        return RunLengthCU.from_runs(
            arrays["run_starts"], arrays["run_codes"],
            meta["n_rows"], meta["dictionary"],
        )
    if kind == "dictionary":
        return DictionaryCU.from_codes(arrays["codes"], meta["dictionary"])
    if kind == "shared":
        return SharedDictionaryCU.from_codes(arrays["codes"], meta["values"])
    raise ValueError(f"unknown CU export kind {kind!r}")
