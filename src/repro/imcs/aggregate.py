"""Aggregation push-down (paper, section V).

"Novel formats and techniques used by DBIM like in-memory storage indexes,
aggregation push-down are extended seamlessly to ADG."

Instead of materialising matching rows and folding them in Python, the
aggregator evaluates COUNT/SUM/AVG/MIN/MAX *in the encoded domain*: every
CU answers :meth:`~repro.imcs.compression.ColumnCU.stats_for_positions`
over the SMU-valid + predicate-matching positions -- numeric columns fold
their float vector, dictionary/RLE columns fold codes and run lengths and
decode only the winning min/max codes -- and only reconcile rows fall back
to row-at-a-time accumulation.  The partial states combine associatively
across IMCUs and the row-store tail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.common.scn import SCN
from repro.imcs.scan import Predicate, ScanEngine, ScanStats
from repro.rowstore.table import Table


@dataclass(frozen=True, slots=True)
class AggregateSpec:
    """One aggregate in the select list: fn over a column (None = *)."""

    fn: str  # 'count' | 'sum' | 'avg' | 'min' | 'max'
    column: Optional[str] = None

    def __post_init__(self) -> None:
        if self.fn not in ("count", "sum", "avg", "min", "max"):
            raise ValueError(f"unknown aggregate {self.fn!r}")
        if self.fn != "count" and self.column is None:
            raise ValueError(f"{self.fn} needs a column")


@dataclass(slots=True)
class _Accumulator:
    """Associative partial state for one aggregate."""

    count: int = 0
    total: float = 0.0
    minimum: object = None
    maximum: object = None

    def merge_encoded(
        self, count: int, total: float, minimum: object, maximum: object
    ) -> None:
        """Fold one CU's encoded-domain partial (stats_for_positions)."""
        if count == 0:
            return
        self.count += count
        self.total += total
        if minimum is not None:
            self.minimum = (
                minimum if self.minimum is None else min(self.minimum, minimum)
            )
        if maximum is not None:
            self.maximum = (
                maximum if self.maximum is None else max(self.maximum, maximum)
            )

    def add_value(self, value: object) -> None:
        if value is None:
            return
        self.count += 1
        if isinstance(value, (int, float)):
            self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value


@dataclass(slots=True)
class AggregateResult:
    values: list = field(default_factory=list)
    stats: ScanStats = field(default_factory=ScanStats)
    #: rows aggregated straight from column vectors (the pushed-down part)
    pushed_down_rows: int = 0


class Aggregator:
    """Pushes aggregates into the columnar scan."""

    def __init__(self, scan_engine: ScanEngine) -> None:
        self.scan_engine = scan_engine

    def aggregate(
        self,
        table: Table,
        snapshot_scn: SCN,
        specs: list[AggregateSpec],
        predicates: Optional[list[Predicate]] = None,
        partitions: Optional[list[str]] = None,
    ) -> AggregateResult:
        predicates = predicates or []
        columns = sorted(
            {s.column for s in specs if s.column is not None}
        )
        accumulators = {c: _Accumulator() for c in columns}
        row_count = _Accumulator()  # COUNT(*) over matching rows
        result = AggregateResult()

        # Reuse the scan engine's coverage walk, but intercept per-IMCU:
        # matching valid positions aggregate vectorially; reconcile rows
        # come back as tuples and accumulate one at a time.
        scan = self.scan_engine.scan(
            table, snapshot_scn, predicates,
            columns=columns or None, partitions=partitions,
            on_imcu_matches=self._vector_hook(
                columns, accumulators, row_count, result
            ),
        )
        result.stats = scan.stats
        # scan.rows now holds only the reconcile-path rows (the hook
        # swallowed IMCU-resident matches)
        for row in scan.rows:
            row_count.add_value(1)
            for i, column in enumerate(columns):
                accumulators[column].add_value(row[i])

        for spec in specs:
            if spec.fn == "count":
                result.values.append(row_count.count)
                continue
            acc = accumulators[spec.column]
            if spec.fn == "sum":
                result.values.append(acc.total if acc.count else None)
            elif spec.fn == "avg":
                result.values.append(
                    acc.total / acc.count if acc.count else None
                )
            elif spec.fn == "min":
                result.values.append(acc.minimum)
            elif spec.fn == "max":
                result.values.append(acc.maximum)
        return result

    def _vector_hook(self, columns, accumulators, row_count, result):
        def hook(imcu, positions: np.ndarray) -> bool:
            """Aggregate matching IMCU positions; True = handled (the scan
            must not materialise these rows)."""
            if positions.size == 0:
                return True
            row_count.count += int(positions.size)
            result.pushed_down_rows += int(positions.size)
            for column in columns:
                # encoded-domain fold: codes / run lengths, no decode
                accumulators[column].merge_encoded(
                    *imcu.column(column).stats_for_positions(positions)
                )
            return True

        return hook
