"""repro.fleet: a multi-standby reader farm behind one primary.

The paper's capacity-expansion deployment (Fig. 2) scales real-time
analytics by putting N standby databases behind one primary, all fed by
the same redo stream.  This package is that serving layer:

* :class:`~repro.fleet.deployment.FleetDeployment` — one primary, a
  fan-out redo shipper per thread, N independent standby pipelines
  (:class:`~repro.fleet.member.StandbyMember`), each with its own query
  service;
* :class:`~repro.fleet.router.FleetRouter` — typed, lag- and load-aware
  session routing with session affinity, read-your-writes floors and
  standby-loss drain/failover;
* :class:`~repro.fleet.wave.SessionWave` — the simulated OLTAP client
  wave used by the reader-farm benchmark and the standby-loss chaos
  scenario.
"""

from repro.fleet.deployment import FleetDeployment
from repro.fleet.member import StandbyMember
from repro.fleet.router import (
    FleetRouter,
    FleetSession,
    NoQualifyingStandbyError,
    PendingFleetSession,
)
from repro.fleet.wave import ClientRecord, SessionWave, WaveConfig

__all__ = [
    "FleetDeployment",
    "StandbyMember",
    "FleetRouter",
    "FleetSession",
    "NoQualifyingStandbyError",
    "PendingFleetSession",
    "ClientRecord",
    "SessionWave",
    "WaveConfig",
]
