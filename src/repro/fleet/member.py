"""One member of the standby reader farm.

A :class:`StandbyMember` wraps a full :class:`StandbyDatabase` pipeline
with the serving-side state the router needs: a mounted flag, the active
routed-session count (load), and the member's published-QuerySCN lag
gauge (the paper's Fig. 11, per member).
"""

from __future__ import annotations

from typing import Optional

from repro import obs
from repro.common.scn import SCN
from repro.db.standby import StandbyDatabase


class StandbyMember:
    """A named standby deployment inside a fleet."""

    def __init__(self, name: str, standby: StandbyDatabase) -> None:
        self.name = name
        self.standby = standby
        #: False once the member is lost (``fleet.lose_standby``): its
        #: apply pipeline is dismounted and no session may route here.
        self.mounted = True
        #: Attached by ``fleet.start_query_services``.
        self.query_service = None
        #: Attached by ``fleet.start_cdc``.
        self.cdc = None
        self.active_sessions = 0
        self._active_gauge = obs.gauge(
            "fleet.member.active_sessions", member=name
        )
        self._lag_gauge = obs.gauge("fleet.member.lag_scns", member=name)

    # ------------------------------------------------------------------
    @property
    def published_scn(self) -> SCN:
        """The member's published QuerySCN — the consistency point every
        query on this member runs at."""
        return self.standby.query_scn.value

    def set_lag(self, lag_scns: int) -> None:
        self._lag_gauge.set(lag_scns)

    # -- session accounting (router-side load signal) -------------------
    def session_opened(self) -> None:
        self.active_sessions += 1
        self._active_gauge.set(self.active_sessions)

    def session_closed(self) -> None:
        self.active_sessions = max(0, self.active_sessions - 1)
        self._active_gauge.set(self.active_sessions)

    # ------------------------------------------------------------------
    def query(self, table_name, predicates=None, columns=None,
              partitions=None):
        """Direct (synchronous) scan on this member, bypassing the
        query service — test/diagnostic convenience."""
        return self.standby.query(table_name, predicates, columns, partitions)

    def __repr__(self) -> str:
        state = "mounted" if self.mounted else "lost"
        return (
            f"StandbyMember({self.name!r}, {state}, "
            f"scn={self.published_scn}, sessions={self.active_sessions})"
        )


__all__ = ["StandbyMember"]
