"""FleetDeployment: one primary fanning redo out to N standby members.

The paper's capacity-expansion story (Fig. 2) scales reads by adding
standby databases behind one primary; this module builds that topology
in one deterministic scheduler:

* one :class:`~repro.db.primary.PrimaryDatabase` generating redo;
* one :class:`~repro.redo.shipping.FanOutLogShipper` per redo thread,
  delivering every batch to all mounted members;
* N :class:`~repro.fleet.member.StandbyMember` wrappers, each a full
  independent :class:`~repro.db.standby.StandbyDatabase` pipeline with
  its own CPU node, FAL source and (optionally) its own
  :class:`~repro.query.service.QueryService`.

The classic :class:`~repro.db.deployment.Deployment` is the degenerate
fleet of size one.  Standby loss (``lose_standby``) dismounts a member:
its shipping stops, its apply actors leave the scheduler, its query
workers shut down, and registered ``on_standby_loss`` callbacks (the
router) drain its sessions.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro import obs
from repro.common.config import SystemConfig
from repro.common.errors import ObjectNotFoundError
from repro.fleet.member import StandbyMember
from repro.redo.shipping import FanOutLogShipper
from repro.sim.cpu import CpuNode
from repro.sim.scheduler import Scheduler
from repro.db.primary import PrimaryDatabase
from repro.db.schema_def import TableDef
from repro.db.standby import StandbyDatabase


class FleetDeployment:
    """A primary + N-standby reader farm on one deterministic scheduler."""

    def __init__(
        self,
        primary: PrimaryDatabase,
        members: list[StandbyMember],
        sched: Scheduler,
        config: SystemConfig,
    ) -> None:
        self.primary = primary
        self.members = members
        self.sched = sched
        self.config = config
        self.shippers: list[FanOutLogShipper] = []
        #: Callbacks fired (synchronously) when a member dismounts; the
        #: router registers here to drain/redistribute its sessions.
        self.on_standby_loss: list[Callable[[StandbyMember], None]] = []
        self.obs = obs.current()

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        n_standbys: int = 3,
        config: Optional[SystemConfig] = None,
        dbim_on_adg: bool = True,
        heartbeats: bool = True,
    ) -> "FleetDeployment":
        """Construct and wire a fleet of ``n_standbys`` members."""
        if n_standbys < 1:
            raise ValueError("a fleet needs at least one standby")
        config = config or SystemConfig()
        sched = Scheduler(seed=config.seed, jitter=0.05)
        registry = obs.current()
        if registry is not None and registry.tracer is None:
            registry.tracer = obs.RedoLifecycleTracer(sched, registry)
        primary = PrimaryDatabase(config)

        def fal_fetch(thread, lo, hi):
            log = primary.redo_logs[thread - 1]
            return [log.record_at(i) for i in range(lo, hi)]

        members: list[StandbyMember] = []
        for i in range(1, n_standbys + 1):
            name = f"standby-{i}"
            standby = StandbyDatabase(
                config,
                dbim_enabled=dbim_on_adg,
                node=CpuNode(name, n_cpus=16),
            )
            standby.receiver.fal_fetch = fal_fetch
            # namespace the member's actors so N pipelines can share one
            # scheduler without name collisions
            standby.merger.name = f"{name}-log-merger"
            standby.coordinator.name = f"{name}-recovery-coordinator"
            for worker in standby.workers:
                worker.name = f"{name}-{worker.name}"
            members.append(StandbyMember(name, standby))

        fleet = cls(primary, members, sched, config)
        for log in primary.redo_logs:
            shipper = FanOutLogShipper(
                log,
                [(m.name, m.standby.receiver) for m in members],
                latency=config.ship_latency,
                node=primary.instances[log.thread - 1].node,
                columnar=config.apply.ingest == "batched",
            )
            sched.add_actor(shipper)
            fleet.shippers.append(shipper)
        primary.attach_actors(sched, heartbeats=heartbeats)
        for member in members:
            member.standby.attach_actors(sched, name_prefix=member.name)

        from repro.rowstore.undo_retention import UndoRetentionManager

        keep = config.rowstore.undo_retention_versions
        sched.add_actor(UndoRetentionManager(
            primary.block_store, keep, name="primary-undo-retention",
            node=primary.instances[0].node,
        ))
        for member in members:
            sched.add_actor(UndoRetentionManager(
                member.standby.block_store, keep,
                name=f"{member.name}-undo-retention",
                node=member.standby.node,
            ))
        return fleet

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def member(self, name: str) -> StandbyMember:
        for member in self.members:
            if member.name == name:
                return member
        raise ObjectNotFoundError(f"no such fleet member: {name!r}")

    @property
    def mounted_members(self) -> list[StandbyMember]:
        return [m for m in self.members if m.mounted]

    @property
    def standby_mounted(self) -> bool:
        """Routing liveness probe: is any member still serving?"""
        return any(m.mounted for m in self.members)

    def lose_standby(self, name: str) -> StandbyMember:
        """Dismount a member (crash/eviction): shipping to it stops, its
        apply pipeline leaves the scheduler, its query service shuts
        down, and ``on_standby_loss`` callbacks drain its sessions."""
        member = self.member(name)
        if not member.mounted:
            return member
        member.mounted = False
        for shipper in self.shippers:
            shipper.remove_destination(name)
        standby = member.standby
        self.sched.remove_actor(standby.merger)
        self.sched.remove_actor(standby.coordinator)
        for worker in standby.workers:
            self.sched.remove_actor(worker)
        doomed_prefix = f"{name}-popworker"
        for actor in list(self.sched.actors):
            if actor.name.startswith(doomed_prefix):
                self.sched.remove_actor(actor)
            elif actor.name == f"{name}-undo-retention":
                self.sched.remove_actor(actor)
        if member.query_service is not None:
            member.query_service.pool.shutdown()
        for callback in self.on_standby_loss:
            callback(member)
        return member

    # ------------------------------------------------------------------
    # schema + in-memory management (fleet-wide)
    # ------------------------------------------------------------------
    def create_table(self, table_def: TableDef):
        """Create on the primary; every member materialises the table
        from the same create-table redo marker (identical object ids)."""
        return self.primary.create_table(table_def)

    def run_until_members_have(
        self, table_name: str, timeout: float = 60.0
    ) -> None:
        ok = self.sched.run_until_condition(
            lambda: all(
                table_name in m.standby.catalog for m in self.mounted_members
            ),
            max_time=timeout,
        )
        if not ok:
            raise TimeoutError(
                f"fleet members never received table {table_name!r}"
            )

    def enable_inmemory(
        self,
        table_name: str,
        partition: Optional[str] = None,
        columns: Optional[list[str]] = None,
        on_primary: bool = False,
    ) -> None:
        """Enable the object on every member's IMCS (and optionally on
        the primary); the primary is told once, because members share
        object ids."""
        if on_primary:
            self.primary.enable_inmemory(table_name, partition, columns)
        self.run_until_members_have(table_name)
        object_ids: list[int] = []
        for member in self.mounted_members:
            object_ids = member.standby.enable_inmemory(
                table_name, partition, columns
            )
        if object_ids:
            self.primary.note_standby_enablement(object_ids)

    def start_cdc(
        self,
        member_name: str,
        tables: Optional[list[str]] = None,
        backfill: bool = True,
    ):
        """Attach a CDC egress + pump to one fleet member.

        Any member can act as the streaming source -- a reader-farm
        deployment typically dedicates one standby to CDC so subscriber
        fan-out never competes with the query members' scan capacity.
        Returns the member's :class:`~repro.cdc.egress.CDCEgress`.
        """
        from repro.cdc import CDCEgress, CDCPump

        member = self.member(member_name)
        egress = CDCEgress(member.standby, self.sched)
        for name in tables or []:
            egress.capture(name, backfill=backfill)
        self.sched.add_actor(CDCPump(
            egress,
            node=member.standby.node,
            name=f"{member_name}-cdc-pump",
        ))
        member.cdc = egress
        return egress

    def start_query_services(
        self,
        n_workers: int = 4,
        cache_capacity: int = 256,
        enable_cache: bool = True,
    ) -> None:
        """Attach a morsel-parallel query service to every member."""
        from repro.query.service import QueryService

        for member in self.members:
            member.query_service = QueryService(
                member.standby, self.sched,
                n_workers=n_workers,
                cache_capacity=cache_capacity,
                enable_cache=enable_cache,
                node=member.standby.node,
                name=f"{member.name}-query",
            )

    # ------------------------------------------------------------------
    # simulation control
    # ------------------------------------------------------------------
    def run(self, duration: float) -> None:
        self.sched.run_for(duration)

    def catch_up(self, timeout: float = 600.0) -> None:
        """Run until every mounted member's QuerySCN covers all primary
        redo generated so far and population backlogs are drained."""
        target = self.primary.clock.current

        def caught_up() -> bool:
            return all(
                m.standby.query_scn.value >= target
                and m.standby.population.fully_populated()
                for m in self.mounted_members
            )

        if not self.sched.run_until_condition(caught_up, max_time=timeout):
            laggards = {
                m.name: m.standby.query_scn.value
                for m in self.mounted_members
                if m.standby.query_scn.value < target
            }
            raise TimeoutError(
                f"fleet lagging: {laggards} < {target} after {timeout}s"
            )

    # ------------------------------------------------------------------
    # lag metrics (Fig. 11, per member)
    # ------------------------------------------------------------------
    @property
    def newest_generated_scn(self) -> int:
        return max(log.last_scn for log in self.primary.redo_logs)

    def member_lag(self, member: StandbyMember) -> int:
        """How far a member's published QuerySCN trails redo generation."""
        return max(
            0, self.newest_generated_scn - member.standby.query_scn.value
        )

    @property
    def redo_lag_scns(self) -> int:
        """Worst-case member lag (the chaos harness's lag sampler)."""
        mounted = self.mounted_members
        if not mounted:
            return 0
        return max(self.member_lag(m) for m in mounted)


__all__ = ["FleetDeployment"]
