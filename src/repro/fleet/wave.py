"""SessionWave: a simulated OLTAP client wave against a routed fleet.

Each client arrives at its scheduled time, optionally performs a primary
write-and-commit first (capturing the commitSCN as its read-your-writes
floor), then connects through the :class:`~repro.fleet.router.FleetRouter`
via the admission queue, runs one analytic scan on whatever target it was
granted, and disconnects.  The wave records, per client: queue wait,
end-to-end latency, the tier it landed on (``primary`` or a member name)
and whether it timed out or was lost to a standby failure.

The same driver powers the ``standby_loss_mid_wave`` chaos scenario and
``benchmarks/bench_reader_farm.py`` — the benchmark runs it twice (round
robin vs lag-aware) on the same seed and compares tail waits.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.imcs.scan import Predicate
from repro.query.admission import AdmissionTimeout
from repro.sim.scheduler import Actor, Scheduler
from repro.fleet.deployment import FleetDeployment
from repro.fleet.router import FleetRouter


@dataclass(slots=True)
class WaveConfig:
    """Shape of the client wave."""

    n_clients: int = 120
    #: Client arrivals per simulated second (uniformly spaced with
    #: seeded jitter).
    arrival_rate: float = 400.0
    #: Fraction of clients that write-and-commit first and carry the
    #: commitSCN as a read-your-writes floor.
    writer_fraction: float = 0.4
    #: Deadline for the queued connect; expiry surfaces as a timeout.
    connect_timeout: float = 2.0
    service_name: str = "reports"
    table_name: str = "T"
    #: Number column the analytic scan filters on.
    predicate_column: str = "n1"
    predicate_cardinality: int = 100
    #: Column writers mutate (must be updatable on the table).
    update_column: str = "n1"
    seed: int = 7
    poll_interval: float = 5e-4


@dataclass(slots=True)
class ClientRecord:
    """Outcome of one wave client."""

    index: int
    kind: str                     # "reader" | "writer"
    arrival: float
    min_scn: int = 0
    granted_at: Optional[float] = None
    done_at: Optional[float] = None
    tier: Optional[str] = None    # "primary" | member name
    timed_out: bool = False
    lost: bool = False
    resubmits: int = 0

    @property
    def wait(self) -> Optional[float]:
        if self.granted_at is None:
            return None
        return self.granted_at - self.arrival

    @property
    def latency(self) -> Optional[float]:
        if self.done_at is None:
            return None
        return self.done_at - self.arrival


class SessionWave(Actor):
    """Drives ``n_clients`` routed sessions through arrival → (write) →
    queued connect → scan → close."""

    def __init__(
        self,
        fleet: FleetDeployment,
        router: FleetRouter,
        config: Optional[WaveConfig] = None,
        rowids: Optional[list] = None,
        start_at: float = 0.0,
    ) -> None:
        self.fleet = fleet
        self.router = router
        self.config = config or WaveConfig()
        #: Rowids writers pick their update victim from (required when
        #: ``writer_fraction > 0``).
        self.rowids = rowids or []
        self.name = "session-wave"
        self.node = None
        cfg = self.config
        rng = random.Random(cfg.seed)
        self._rng = rng
        spacing = 1.0 / cfg.arrival_rate
        at = start_at
        self.records: list[ClientRecord] = []
        self._arrivals: list[float] = []
        for i in range(cfg.n_clients):
            at += spacing * (0.5 + rng.random())
            kind = "writer" if rng.random() < cfg.writer_fraction else "reader"
            self._arrivals.append(at)
            self.records.append(ClientRecord(index=i, kind=kind, arrival=at))
        self._next_arrival = 0
        #: index -> (pending, record) while queued
        self._queued: dict[int, object] = {}
        #: index -> (session, handle, generation, record) while scanning
        self._scanning: dict[int, object] = {}
        self.failed_connects = 0

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return (
            self._next_arrival >= len(self.records)
            and not self._queued
            and not self._scanning
        )

    def finished_records(self) -> list[ClientRecord]:
        return [r for r in self.records if r.done_at is not None]

    # ------------------------------------------------------------------
    def _predicates(self) -> list[Predicate]:
        cfg = self.config
        value = float(self._rng.randrange(cfg.predicate_cardinality))
        return [Predicate.eq(cfg.predicate_column, value)]

    def _start_client(self, index: int, now: float) -> None:
        cfg = self.config
        record = self.records[index]
        min_scn = 0
        if record.kind == "writer" and self.rowids:
            # the write happens on the primary, synchronously; the commit
            # SCN becomes the client's read-your-writes floor
            primary = self.fleet.primary
            txn = primary.begin()
            rowid = self.rowids[self._rng.randrange(len(self.rowids))]
            value = float(self._rng.randrange(10_000))
            primary.update(
                txn, cfg.table_name, rowid, {cfg.update_column: value}
            )
            min_scn = primary.commit(txn)
        record.min_scn = min_scn
        try:
            pending = self.router.connect_queued(
                cfg.service_name,
                min_scn=min_scn,
                timeout=cfg.connect_timeout,
            )
        except Exception:
            self.failed_connects += 1
            record.done_at = now
            record.lost = True
            return
        self._queued[index] = (pending, record)

    def _poll_queued(self, now: float) -> None:
        for index in list(self._queued):
            pending, record = self._queued[index]
            if pending.timed_out:
                record.timed_out = True
                record.done_at = now
                try:
                    pending.get()
                except AdmissionTimeout:
                    pass  # the deadline error is the expected surface
                del self._queued[index]
                continue
            if not pending.ready:
                continue
            session = pending.get()
            record.granted_at = (
                pending.granted_at if pending.granted_at is not None else now
            )
            record.tier = (
                session.member.name if session.member is not None
                else "primary"
            )
            del self._queued[index]
            self._submit(index, session, record)

    def _submit(self, index: int, session, record: ClientRecord) -> None:
        try:
            handle = session.submit(
                self.config.table_name, self._predicates()
            )
        except Exception:
            session.close()
            record.lost = True
            record.done_at = self.fleet.sched.now
            return
        self._scanning[index] = (session, handle, session.generation, record)

    def _poll_scanning(self, now: float) -> None:
        for index in list(self._scanning):
            session, handle, generation, record = self._scanning[index]
            if session.lost or session.closed:
                # standby loss left the session with no legal target
                record.lost = True
                record.done_at = now
                del self._scanning[index]
                continue
            if session.generation != generation:
                # rebound after standby loss: the old member's workers are
                # gone, so the in-flight handle will never resolve -- the
                # driver resubmits on the new target
                record.tier = (
                    session.member.name if session.member is not None
                    else "primary"
                )
                record.resubmits += 1
                del self._scanning[index]
                self._submit(index, session, record)
                continue
            if not handle.done:
                continue
            record.done_at = now
            session.close()
            del self._scanning[index]

    # ------------------------------------------------------------------
    def step(self, sched: Scheduler) -> Optional[float]:
        now = sched.now
        while (
            self._next_arrival < len(self.records)
            and self._arrivals[self._next_arrival] <= now
        ):
            self._start_client(self._next_arrival, now)
            self._next_arrival += 1
        # lazy deadline expiry for parked read-your-writes waiters
        self.router.expire_waiters()
        self._poll_queued(now)
        self._poll_scanning(now)
        if self.done:
            return None
        return self.config.poll_interval


__all__ = ["ClientRecord", "SessionWave", "WaveConfig"]
