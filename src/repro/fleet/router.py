"""FleetRouter: lag- and load-aware session routing over a reader farm.

The router fronts a :class:`~repro.fleet.deployment.FleetDeployment` the
way Oracle's Services Infrastructure fronts an ADG reader farm: clients
connect through a service name and the router picks the database — and,
for standby-routed services, the *member* — the session is pinned to,
as a typed :class:`~repro.db.services.RouteTarget`.

Routing policy (``lag_aware``, the default) scores each qualifying
member by ``published-QuerySCN lag + load_weight * active_sessions`` and
picks the minimum (ties break by member name, so decisions are
deterministic).  ``round_robin`` ignores both signals — it exists as the
baseline the reader-farm benchmark gates against.

**Read-your-writes.**  A client carrying a last-seen commitSCN ``C``
(``min_scn=C``) is only ever routed to a member whose published QuerySCN
already covers ``C`` — queries on that member run at its QuerySCN, so
the session can never observe a database state older than its own
writes.  If no member qualifies, :meth:`connect_queued` parks the
request in the :class:`~repro.query.admission.AdmissionController` wait
queue with an eligibility predicate; every QuerySCN publication pumps
the queue, so the waiter admits the moment a member catches up (or
expires with its deadline error — never with a stale grant).

**Standby loss.**  The router registers on the fleet's
``on_standby_loss`` hook: when a member dismounts, its sessions are
drained and rebound to another qualifying member, failed over to the
primary (services that allow it), or marked lost.  The
``routed_unmounted`` counter — incremented if a session is ever bound
to or submits on an unmounted member — is the chaos invariant and must
stay zero.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from repro import obs
from repro.common.errors import InvalidStateError
from repro.common.scn import SCN
from repro.fleet.deployment import FleetDeployment
from repro.fleet.member import StandbyMember
from repro.query.admission import (
    AdmissionController,
    AdmissionTimeout,
    PoolExhaustedError,
)
from repro.query.service import QueryHandle
from repro.db.services import (
    PRIMARY_TARGET,
    Role,
    RouteTarget,
    Service,
    ServiceRegistry,
)

POLICIES = ("lag_aware", "round_robin")


class NoQualifyingStandbyError(InvalidStateError):
    """Immediate standby-only connect with a read-your-writes floor no
    mounted member covers (queued connects wait instead)."""


class FleetSession:
    """One routed client connection against the fleet.

    Standby-bound sessions submit reads through their member's query
    service; primary-bound sessions may also run transactions, and each
    commit raises the session's ``last_seen_scn`` (the floor a
    subsequent read-your-writes connect would carry).
    """

    def __init__(
        self,
        router: "FleetRouter",
        service_name: str,
        target: RouteTarget,
        member: Optional[StandbyMember],
        min_scn: SCN = 0,
        affinity_key=None,
    ) -> None:
        self.router = router
        self.service_name = service_name
        self.target = target
        self.member = member
        self.min_scn = min_scn
        self.affinity_key = affinity_key
        #: Bumped on every rebind (standby loss): drivers re-submit
        #: queries whose handle predates the current generation.
        self.generation = 0
        self.closed = False
        #: True when standby loss left no legal target for this session.
        self.lost = False
        self.queries_run = 0
        self.last_seen_scn = min_scn
        self._txn = None

    # ------------------------------------------------------------------
    @property
    def role(self) -> str:
        return self.target.role.value

    @property
    def is_read_only(self) -> bool:
        return self.target.is_standby

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def submit(
        self,
        table_name: str,
        predicates=None,
        columns=None,
        partitions=None,
    ) -> QueryHandle:
        """Run a scan on the session's routed database.  Returns a
        :class:`QueryHandle`; standby-bound sessions resolve it through
        the member's worker pool, primary-bound ones immediately."""
        if self.closed:
            raise InvalidStateError("session is closed")
        self.queries_run += 1
        member = self.member
        if member is not None:
            self.router._audit_submit(self, member)
            if member.query_service is not None:
                handle = member.query_service.submit(
                    table_name, predicates, columns, partitions
                )
            else:
                result = member.standby.query(
                    table_name, predicates, columns, partitions
                )
                handle = QueryHandle(
                    None, member.published_scn, cached=False,
                    submit_time=self.router.fleet.sched.now, result=result,
                )
        else:
            primary = self.router.fleet.primary
            result = primary.query(table_name, predicates, columns, partitions)
            handle = QueryHandle(
                None, primary.clock.current, cached=False,
                submit_time=self.router.fleet.sched.now, result=result,
            )
        self.router._audit_result(self, handle.scn)
        return handle

    # ------------------------------------------------------------------
    # transactions (primary-routed sessions only)
    # ------------------------------------------------------------------
    def _require_writable(self) -> None:
        if self.is_read_only:
            raise InvalidStateError(
                f"service {self.service_name!r} routed this session to "
                f"{self.target.describe()}: the database is open read-only"
            )

    def _active_txn(self):
        primary = self.router.fleet.primary
        if self._txn is None or not self._txn.is_active:
            self._txn = primary.begin()
        return self._txn

    def insert(self, table_name: str, values: tuple, partition=None):
        self._require_writable()
        return self.router.fleet.primary.insert(
            self._active_txn(), table_name, values, partition
        )

    def update(self, table_name: str, rowid, changes: dict) -> None:
        self._require_writable()
        self.router.fleet.primary.update(
            self._active_txn(), table_name, rowid, changes
        )

    def delete(self, table_name: str, rowid) -> None:
        self._require_writable()
        self.router.fleet.primary.delete(
            self._active_txn(), table_name, rowid
        )

    def commit(self) -> Optional[SCN]:
        self._require_writable()
        if self._txn is None or not self._txn.is_active:
            return None
        scn = self.router.fleet.primary.commit(self._txn)
        self._txn = None
        self.last_seen_scn = max(self.last_seen_scn, scn)
        return scn

    def rollback(self) -> None:
        self._require_writable()
        if self._txn is not None and self._txn.is_active:
            self.router.fleet.primary.rollback(self._txn)
        self._txn = None

    # ------------------------------------------------------------------
    # rebinding (standby loss)
    # ------------------------------------------------------------------
    def _rebind(self, new_member: StandbyMember) -> None:
        if self.member is not None:
            self.member.session_closed()
        self.member = new_member
        new_member.session_opened()
        self.target = RouteTarget(Role.STANDBY, new_member.name)
        self.generation += 1

    def _rebind_primary(self) -> None:
        if self.member is not None:
            self.member.session_closed()
        self.member = None
        self.target = PRIMARY_TARGET
        self.generation += 1

    def _mark_lost(self) -> None:
        self.lost = True
        self.generation += 1
        self.close()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self.closed:
            return
        if self._txn is not None and self._txn.is_active:
            self.router.fleet.primary.rollback(self._txn)
            self._txn = None
        self.closed = True
        self.router._session_closed(self)

    def __enter__(self) -> "FleetSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"FleetSession(service={self.service_name!r}, "
            f"target={self.target.describe()})"
        )


class PendingFleetSession:
    """A queued routed connect: resolves when a slot frees up *and* (for
    read-your-writes) a qualifying member exists."""

    __slots__ = (
        "service_name", "session", "timed_out", "granted_at", "_waiter"
    )

    def __init__(self, service_name: str) -> None:
        self.service_name = service_name
        self.session: Optional[FleetSession] = None
        self.timed_out = False
        self.granted_at: Optional[float] = None
        self._waiter = None

    @property
    def ready(self) -> bool:
        return self.session is not None

    def get(self) -> FleetSession:
        if self.timed_out:
            raise AdmissionTimeout(
                f"queued connect to {self.service_name!r} timed out"
            )
        if self.session is None:
            raise InvalidStateError("queued connect not granted yet")
        return self.session


class FleetRouter:
    """Routes service connections across a fleet of standby members."""

    def __init__(
        self,
        fleet: FleetDeployment,
        policy: str = "lag_aware",
        max_sessions: Optional[int] = None,
        per_service: Optional[dict[str, int]] = None,
        queue_limit: Optional[int] = None,
        load_weight: float = 16.0,
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(
                f"unknown routing policy {policy!r}; choose from {POLICIES}"
            )
        self.fleet = fleet
        self.policy = policy
        #: How many SCNs of lag one active session is "worth" in the
        #: lag_aware score -- the load-balancing half of the policy.
        self.load_weight = load_weight
        self.registry = ServiceRegistry(
            standby_available=lambda: fleet.standby_mounted
        )
        self.admission = AdmissionController(
            limit=max_sessions,
            per_service=per_service,
            queue_limit=queue_limit,
            clock=lambda: fleet.sched.now,
        )
        self._sessions: list[FleetSession] = []
        self._affinity: dict[object, str] = {}
        self._rr = itertools.count()
        #: Plain decision tallies for reports: family -> service -> count.
        self.decisions: dict[str, dict[str, int]] = {
            family: {}
            for family in ("routed", "queued", "failed_over", "expired",
                           "drained")
        }
        #: Where sessions landed: target description -> count.
        self.routed_by_target: dict[str, int] = {}
        #: Read-your-writes audit: (min_scn, granted_scn, target) per
        #: connect that carried a floor.
        self.ryw_grants: list[tuple[SCN, SCN, str]] = []
        #: Invariant counters -- both must stay zero, always.
        self.ryw_violations = 0
        self.routed_unmounted = 0
        self._obs_counters: dict[tuple, object] = {}
        fleet.on_standby_loss.append(self._handle_standby_loss)
        for member in fleet.members:
            member.standby.query_scn.subscribe(
                self._make_publish_listener(member)
            )

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _count(self, family: str, service_name: str, target=None) -> None:
        per_service = self.decisions[family]
        per_service[service_name] = per_service.get(service_name, 0) + 1
        labels = {"service": service_name}
        if target is not None:
            labels["target"] = target
            self.routed_by_target[target] = (
                self.routed_by_target.get(target, 0) + 1
            )
        key = (family, service_name, target)
        counter = self._obs_counters.get(key)
        if counter is None:
            counter = obs.counter(f"fleet.router.{family}", **labels)
            self._obs_counters[key] = counter
        counter.inc()

    def _make_publish_listener(
        self, member: StandbyMember
    ) -> Callable[[SCN], None]:
        def on_publish(scn: SCN) -> None:
            member.set_lag(self.fleet.member_lag(member))
            if self.admission.queue_depth:
                # a read-your-writes waiter may just have become eligible
                self.admission.pump()

        return on_publish

    def _audit_submit(self, session: FleetSession,
                      member: StandbyMember) -> None:
        if not member.mounted:
            self.routed_unmounted += 1

    def _audit_result(self, session: FleetSession, scn: SCN) -> None:
        if scn < session.min_scn:
            self.ryw_violations += 1

    # ------------------------------------------------------------------
    # member selection
    # ------------------------------------------------------------------
    def _candidates(self, min_scn: SCN) -> list[StandbyMember]:
        return [
            m for m in self.fleet.members
            if m.mounted and m.published_scn >= min_scn
        ]

    def select_member(
        self, min_scn: SCN = 0, affinity_key=None
    ) -> Optional[StandbyMember]:
        """Pick the member a standby-routed session lands on, or None if
        no mounted member covers ``min_scn``."""
        candidates = self._candidates(min_scn)
        if not candidates:
            return None
        chosen: Optional[StandbyMember] = None
        if affinity_key is not None:
            bound = self._affinity.get(affinity_key)
            if bound is not None:
                for member in candidates:
                    if member.name == bound:
                        chosen = member
                        break
        if chosen is None:
            if self.policy == "round_robin":
                members = self.fleet.members
                for __ in range(len(members)):
                    member = members[next(self._rr) % len(members)]
                    if member in candidates:
                        chosen = member
                        break
                else:
                    chosen = candidates[0]
            else:
                chosen = min(
                    candidates,
                    key=lambda m: (
                        self.fleet.member_lag(m)
                        + self.load_weight * m.active_sessions,
                        m.name,
                    ),
                )
        if affinity_key is not None:
            self._affinity[affinity_key] = chosen.name
        return chosen

    # ------------------------------------------------------------------
    # connects
    # ------------------------------------------------------------------
    def _wants_standby(self, service: Service, prefer_standby: bool) -> bool:
        return service is Service.STANDBY_ONLY or (
            service is Service.PRIMARY_AND_STANDBY and prefer_standby
        )

    def _resolve(
        self,
        service_name: str,
        min_scn: SCN,
        affinity_key,
        prefer_standby: bool,
    ) -> tuple[RouteTarget, Optional[StandbyMember]]:
        """Pick the target for a connect that is being granted *now*."""
        target = self.registry.route(service_name, prefer_standby)
        if not target.is_standby:
            return target, None
        member = self.select_member(min_scn, affinity_key)
        if member is not None:
            return RouteTarget(Role.STANDBY, member.name), member
        service = self.registry.get(service_name).service
        if service is Service.PRIMARY_AND_STANDBY:
            # no member covers the floor: fail the read over to the
            # primary, which by construction covers every commitSCN
            self._count("failed_over", service_name)
            return PRIMARY_TARGET, None
        raise NoQualifyingStandbyError(
            f"service {service_name!r}: no mounted standby has published "
            f"QuerySCN >= {min_scn}"
        )

    def _make_session(
        self,
        service_name: str,
        target: RouteTarget,
        member: Optional[StandbyMember],
        min_scn: SCN,
        affinity_key,
    ) -> FleetSession:
        session = FleetSession(
            self, service_name, target, member, min_scn, affinity_key
        )
        if member is not None:
            if not member.mounted:
                self.routed_unmounted += 1
            member.session_opened()
        self._sessions.append(session)
        self._count("routed", service_name, target=target.describe())
        if min_scn > 0:
            granted_scn = (
                member.published_scn if member is not None
                else self.fleet.primary.clock.current
            )
            self.ryw_grants.append((min_scn, granted_scn, target.describe()))
            if granted_scn < min_scn:
                self.ryw_violations += 1
        return session

    def connect(
        self,
        service_name: str,
        min_scn: SCN = 0,
        affinity_key=None,
        prefer_standby: bool = True,
    ) -> FleetSession:
        """Admit immediately or raise (:class:`PoolExhaustedError` on
        capacity, :class:`NoQualifyingStandbyError` on an unsatisfiable
        read-your-writes floor for a standby-only service)."""
        self.registry.get(service_name)  # unknown service: fail first
        target, member = self._resolve(
            service_name, min_scn, affinity_key, prefer_standby
        )
        if not self.admission.try_admit(service_name):
            raise PoolExhaustedError(
                f"fleet router at capacity for service {service_name!r}"
            )
        try:
            return self._make_session(
                service_name, target, member, min_scn, affinity_key
            )
        except BaseException:
            self.admission.release(service_name)
            raise

    def connect_queued(
        self,
        service_name: str,
        min_scn: SCN = 0,
        affinity_key=None,
        prefer_standby: bool = True,
        timeout: Optional[float] = None,
    ) -> PendingFleetSession:
        """Queue for a slot *and* (for standby-routed read-your-writes)
        a qualifying member; grants as soon as both hold."""
        definition = self.registry.get(service_name)
        service = definition.service
        wants_standby = self._wants_standby(service, prefer_standby)
        pending = PendingFleetSession(service_name)

        def eligible() -> bool:
            if not wants_standby:
                return True
            if self._candidates(min_scn):
                return True
            # every member is gone: PRIMARY_AND_STANDBY may fail over at
            # grant time; STANDBY_ONLY must keep waiting (until expiry)
            return (
                not self.fleet.standby_mounted
                and service is Service.PRIMARY_AND_STANDBY
            )

        def grant() -> None:
            try:
                target, member = self._resolve(
                    service_name, min_scn, affinity_key, prefer_standby
                )
                pending.session = self._make_session(
                    service_name, target, member, min_scn, affinity_key
                )
                pending.granted_at = self.fleet.sched.now
            except BaseException:
                self.admission.release(service_name)
                raise

        def expired() -> None:
            pending.timed_out = True
            self._count("expired", service_name)

        pending._waiter = self.admission.enqueue(
            service_name, grant, timeout=timeout, on_timeout=expired,
            eligible=eligible,
        )
        if not pending.ready:
            self._count("queued", service_name)
        return pending

    def expire_waiters(self) -> int:
        return self.admission.expire_waiters()

    # ------------------------------------------------------------------
    # standby loss: drain + redistribute
    # ------------------------------------------------------------------
    def _handle_standby_loss(self, member: StandbyMember) -> None:
        for session in list(self._sessions):
            if session.closed or session.member is not member:
                continue
            self._count("drained", session.service_name)
            new_member = self.select_member(
                session.min_scn, session.affinity_key
            )
            if new_member is not None:
                session._rebind(new_member)
                self._count(
                    "routed", session.service_name,
                    target=session.target.describe(),
                )
            elif self.registry.get(
                session.service_name
            ).service.runs_on_primary:
                session._rebind_primary()
                self._count("failed_over", session.service_name)
                self._count(
                    "routed", session.service_name,
                    target=session.target.describe(),
                )
            else:
                session._mark_lost()
        self._affinity = {
            key: name for key, name in self._affinity.items()
            if name != member.name
        }
        # waiters pinned on the lost member's catch-up may now qualify
        # elsewhere (or fail over); re-drain
        self.admission.pump()

    # ------------------------------------------------------------------
    def _session_closed(self, session: FleetSession) -> None:
        if session.member is not None:
            session.member.session_closed()
        if session in self._sessions:
            self._sessions.remove(session)
        self.admission.release(session.service_name)

    @property
    def open_sessions(self) -> list[FleetSession]:
        return list(self._sessions)


__all__ = [
    "POLICIES",
    "FleetRouter",
    "FleetSession",
    "NoQualifyingStandbyError",
    "PendingFleetSession",
]
