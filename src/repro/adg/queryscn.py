"""The QuerySCN: the standby's published consistency point.

"A recovery coordinator process tracks the progress of all the recovery
worker processes and establishes a consistency point up to which all
workers have completed redo apply.  This consistency point is exposed as
the 'QuerySCN' on ADG" (paper, II-A).  Because workers apply at different
rates the published values typically *leapfrog* rather than forming a
dense SCN sequence -- the history list lets tests assert exactly that.
"""

from __future__ import annotations

from typing import Callable

from repro import obs
from repro.common.errors import InvalidStateError, ReproError
from repro.common.scn import NULL_SCN, SCN


class ListenerFanoutError(ReproError):
    """One or more publication listeners raised during fan-out.

    The publication itself is complete -- ``value``/``history`` advanced
    and **every** listener was notified (a poisoned listener must not
    leave later listeners, e.g. non-master RAC coordinators or fleet lag
    samplers, permanently behind).  The individual exceptions are kept
    on :attr:`errors`.
    """

    def __init__(self, scn: SCN, errors: list[BaseException]) -> None:
        self.scn = scn
        self.errors = errors
        detail = "; ".join(
            f"{type(e).__name__}: {e}" for e in errors
        )
        super().__init__(
            f"{len(errors)} listener(s) raised during publication of "
            f"QuerySCN {scn}: {detail}"
        )


class QuerySCNPublisher:
    """Holds the current QuerySCN and notifies listeners on advancement."""

    publications = obs.view("_publications")

    def __init__(self, initial: SCN = NULL_SCN) -> None:
        self._value: SCN = initial
        #: (simulated time, value) pairs, for lag plots (Fig. 11).
        self.history: list[tuple[float, SCN]] = []
        self._listeners: list[Callable[[SCN], None]] = []
        self._obs = obs.current()
        self._publications = obs.counter("adg.queryscn.publications")

    @property
    def value(self) -> SCN:
        return self._value

    def subscribe(self, listener: Callable[[SCN], None]) -> None:
        """Register a callback fired after each publication (e.g. the
        local recovery coordinator of a non-master RAC instance)."""
        self._listeners.append(listener)

    def publish(self, scn: SCN, at_time: float = 0.0) -> None:
        if scn < self._value:
            raise InvalidStateError(
                f"QuerySCN cannot move backwards: {scn} < {self._value}"
            )
        if scn == self._value:
            return
        self._value = scn
        self.history.append((at_time, scn))
        self._publications.inc()
        tracer = obs.tracer_of(self._obs)
        if tracer is not None:
            tracer.record_published(scn)
        # Notify *every* listener even if one raises: the publication has
        # already happened (value/history advanced above), so aborting
        # the fan-out would leave later listeners permanently behind.
        errors: list[BaseException] = []
        for listener in self._listeners:
            try:
                listener(scn)
            except Exception as exc:  # noqa: BLE001 -- aggregated below
                errors.append(exc)
        if errors:
            raise ListenerFanoutError(scn, errors)

    def __repr__(self) -> str:
        return f"QuerySCNPublisher(value={self._value})"
