"""Pluggable consistency-point strategies for QuerySCN advancement.

The paper's III-D protocol (chop -> drain -> quiesce -> publish) is one
point in a family of consistent-snapshot algorithms (Li et al., "A
Comparative Study of Consistent Snapshot Algorithms"): the same
correctness obligation -- *every invalidation with commitSCN <= S is
applied before S becomes visible* -- admits different schedules for the
drain and quiesce work.  This module factors the schedule out of
:class:`~repro.adg.coordinator.RecoveryCoordinator` behind
:class:`ConsistencyPointStrategy` and ships three implementations:

* :class:`EagerFlushStrategy` -- the paper's protocol, verbatim: drain
  the whole worklink to the SMUs, then quiesce and publish.  The default
  and the correctness oracle for the others.
* :class:`DeferredDrainStrategy` -- ZigZag/ping-pong flavoured: the
  worklink drains into a *staging buffer* (the shadow side of the
  double buffer) instead of the live SMU masks; the staged masks are
  swapped in inside the quiesce window, and journal anchor retirement
  is deferred past publication entirely.  Publication latency stops
  paying for SMU mask writes; the quiesce window pays a short batched
  apply instead.
* :class:`BatchedQuiesceStrategy` -- CALC-style asynchronous barrier:
  while a drained advancement waits, newer consistency points are folded
  into the same in-flight advancement (re-chopping the commit table for
  the higher target), so one quiesce window publishes several
  consistency points' worth of progress.  Fewer quiesce acquisitions,
  slightly later visibility.

Every strategy must leave the visible-row relation identical at each
published QuerySCN -- ``tests/property/test_strategy_equivalence.py``
drives randomized histories through all registered strategies against
the primary's Consistent Read as oracle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.common.scn import SCN

if TYPE_CHECKING:  # pragma: no cover
    from repro.adg.coordinator import RecoveryCoordinator
    from repro.common.config import AdvanceConfig


class ConsistencyPointStrategy:
    """How the coordinator schedules drain/quiesce work for a target SCN.

    The coordinator keeps everything generic -- candidate computation,
    stall accounting, the chaos site, quiesce acquisition, publication
    and metrics -- and delegates the protocol-shaped decisions here.
    The strategy reads ``coordinator.advance_protocol`` *dynamically*
    (tests swap it after construction), so it must never cache it.
    """

    name = "base"
    #: Whether the coordinator keeps running interval checks while an
    #: advancement is in flight, feeding newer candidates to
    #: :meth:`offer` (the CALC-style barrier wants them; the others
    #: ignore mid-flight candidates entirely).
    accepts_new_candidates = False

    def __init__(self) -> None:
        self.coordinator: Optional["RecoveryCoordinator"] = None
        #: Target SCN of the in-flight advancement (mirrors the
        #: coordinator's ``_advancing_to`` for the simple strategies).
        self.target: Optional[SCN] = None

    def bind(self, coordinator: "RecoveryCoordinator") -> None:
        self.coordinator = coordinator

    @property
    def protocol(self):
        assert self.coordinator is not None
        return self.coordinator.advance_protocol

    # -- advancement lifecycle ------------------------------------------
    def begin(self, candidate: SCN, now: float) -> None:
        """A new advancement starts towards ``candidate``."""
        raise NotImplementedError

    def offer(self, candidate: SCN, now: float) -> None:
        """A newer consistency point computed mid-advancement (only
        called when :attr:`accepts_new_candidates`)."""

    def drain(self, batch: int) -> Optional[int]:
        """One slice of drain work.  Returns nodes processed, ``-1``
        when a worklink exists but draining is blocked, or ``None`` when
        there is no flush protocol at all (plain ADG: no drain phase,
        no flush cost)."""
        raise NotImplementedError

    def ready(self) -> bool:
        """True once the strategy is willing to enter the quiesce
        window.  Only consulted when :meth:`drain` returned non-None."""
        raise NotImplementedError

    def publish_scn(self) -> SCN:
        """The SCN this advancement publishes (the barrier strategy may
        have folded newer targets in since :meth:`begin`)."""
        assert self.target is not None
        return self.target

    def pre_publish(self, scn: SCN) -> int:
        """Work that must run inside the quiesce window, strictly before
        the publication (e.g. swapping staged SMU masks in).  Returns a
        unit count the coordinator converts into simulated cost."""
        return 0

    def post_publish(self, scn: SCN) -> None:
        """Post-publication bookkeeping (``finish_advance``)."""
        self.target = None

    # -- background (out-of-critical-path) work -------------------------
    def pending_background(self) -> bool:
        """Deferred work available while no advancement is in flight."""
        return False

    def background_drain(self, batch: int) -> int:
        """One slice of deferred work; returns units processed."""
        return 0

    def reset(self) -> None:
        """Instance restart: abandon all in-flight strategy state."""
        self.target = None


class EagerFlushStrategy(ConsistencyPointStrategy):
    """The paper's III-D protocol: fully drain, then quiesce + publish."""

    name = "eager"

    def begin(self, candidate: SCN, now: float) -> None:
        self.target = candidate
        protocol = self.protocol
        if protocol is not None:
            protocol.begin_advance(candidate)

    def drain(self, batch: int) -> Optional[int]:
        protocol = self.protocol
        if protocol is None:
            return None
        return protocol.coordinator_flush(batch)

    def ready(self) -> bool:
        protocol = self.protocol
        return protocol is None or protocol.is_advance_complete()

    def post_publish(self, scn: SCN) -> None:
        protocol = self.protocol
        if protocol is not None:
            protocol.finish_advance(scn)
        self.target = None


class DeferredDrainStrategy(EagerFlushStrategy):
    """ZigZag-flavoured double buffering: drain to a shadow buffer.

    The worklink drains into the flush component's staging buffer
    (invalidation listeners still fire at stage time, strictly
    pre-publication -- the result cache's contract).  The staged SMU
    mask writes are applied in one batch inside the quiesce window
    (:meth:`pre_publish`), and journal anchor retirement -- the other
    half of the critical-path work -- happens *after* publication via
    the coordinator's background drain.

    Staging requires a synchronous router (local SMU application): with
    an async interconnect router (SIRA RAC) the strategy degrades to
    plain eager drain per-advancement, keeping RAC semantics intact.
    """

    name = "deferred"

    def __init__(self) -> None:
        super().__init__()
        self._staged_this_advance = False

    @staticmethod
    def _stageable(protocol) -> bool:
        return (
            hasattr(protocol, "set_staged")
            and getattr(protocol, "router_is_synchronous", False)
        )

    def begin(self, candidate: SCN, now: float) -> None:
        self.target = candidate
        protocol = self.protocol
        if protocol is None:
            return
        self._staged_this_advance = self._stageable(protocol)
        if hasattr(protocol, "set_staged"):
            protocol.set_staged(self._staged_this_advance)
        protocol.begin_advance(candidate)

    def pre_publish(self, scn: SCN) -> int:
        protocol = self.protocol
        if protocol is None or not self._staged_this_advance:
            return 0
        return protocol.apply_staged()

    def post_publish(self, scn: SCN) -> None:
        super().post_publish(scn)
        self._staged_this_advance = False

    def pending_background(self) -> bool:
        protocol = self.protocol
        return bool(getattr(protocol, "has_pending_retire", False))

    def background_drain(self, batch: int) -> int:
        protocol = self.protocol
        if protocol is None:
            return 0
        return protocol.retire_staged(batch)

    def reset(self) -> None:
        super().reset()
        self._staged_this_advance = False


class BatchedQuiesceStrategy(EagerFlushStrategy):
    """CALC-style asynchronous barrier: several points per quiesce.

    After the current worklink drains, the advancement does not rush to
    the quiesce window; instead, newer consistency points computed on
    the coordinator's interval ticks are folded in by re-chopping the
    commit table up to the higher target (safe exactly because the
    previous worklink is fully drained).  The barrier closes -- and one
    publication covers every folded point -- when ``barrier_width``
    points accumulated or a tick brings no higher candidate.
    """

    name = "batched"
    accepts_new_candidates = True

    def __init__(self, barrier_width: int = 4) -> None:
        super().__init__()
        self.barrier_width = max(1, barrier_width)
        self._points = 0
        self._closed = False

    def begin(self, candidate: SCN, now: float) -> None:
        super().begin(candidate, now)
        self._points = 1
        self._closed = self.barrier_width <= 1 or self.protocol is None

    def offer(self, candidate: SCN, now: float) -> None:
        protocol = self.protocol
        if self._closed or protocol is None:
            return
        if not protocol.is_advance_complete():
            return  # still draining the current chop; fold in later
        assert self.target is not None
        if candidate <= self.target:
            # no progress since the drain finished: close the barrier so
            # the publication is not postponed indefinitely (liveness)
            self._closed = True
            return
        protocol.begin_advance(candidate)
        self.target = candidate
        self._points += 1
        if self._points >= self.barrier_width:
            self._closed = True

    def ready(self) -> bool:
        protocol = self.protocol
        if protocol is None:
            return True
        return self._closed and protocol.is_advance_complete()

    def post_publish(self, scn: SCN) -> None:
        super().post_publish(scn)
        self._points = 0
        self._closed = False

    def reset(self) -> None:
        super().reset()
        self._points = 0
        self._closed = False


# ----------------------------------------------------------------------
#: Registry of strategy names -> factory.  The equivalence property test
#: iterates this, so registering a strategy opts it into the oracle.
STRATEGIES: dict[str, type[ConsistencyPointStrategy]] = {
    EagerFlushStrategy.name: EagerFlushStrategy,
    DeferredDrainStrategy.name: DeferredDrainStrategy,
    BatchedQuiesceStrategy.name: BatchedQuiesceStrategy,
}


def create_strategy(
    config: Optional["AdvanceConfig"] = None,
) -> ConsistencyPointStrategy:
    """Build the strategy an :class:`~repro.common.config.AdvanceConfig`
    names (default: eager)."""
    if config is None:
        return EagerFlushStrategy()
    try:
        cls = STRATEGIES[config.strategy]
    except KeyError:
        known = ", ".join(sorted(STRATEGIES))
        raise ValueError(
            f"unknown consistency-point strategy {config.strategy!r}; "
            f"known: {known}"
        ) from None
    if cls is BatchedQuiesceStrategy:
        return BatchedQuiesceStrategy(barrier_width=config.barrier_width)
    return cls()


__all__ = [
    "ConsistencyPointStrategy",
    "EagerFlushStrategy",
    "DeferredDrainStrategy",
    "BatchedQuiesceStrategy",
    "STRATEGIES",
    "create_strategy",
]
