"""Parallel redo apply: distributor and recovery workers.

"Redo apply is massively parallelized for Oracle ADG by distributing the
SCN-ordered set of CVs amongst recovery worker processes based on a
hashing scheme.  Each DBA is hashed to a particular recovery worker
identifier, so a recovery worker process can independently process the CVs
it has been assigned, and apply the CVs to database blocks in the SCN
order" (paper, II-A, Fig. 3).

Two DBIM-on-ADG hooks attach here, exactly where the paper puts them:

* a **sniffer** (the Mining Component) sees every CV as a worker applies
  it; a sniff can fail on a journal bucket-latch miss, in which case the
  worker stops its batch and retries the same CV on its next step -- the
  spinning behaviour whose cost the journal's sizing is designed to avoid;
* a **flush helper** lets workers participate in cooperative invalidation
  flush: each step first drains a batch of worklink nodes if a worklink
  exists, then returns to redo apply (paper, III-D-2).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional, Protocol

from repro import obs
from repro.chaos import sites
from repro.common.ids import WorkerId
from repro.common.scn import NULL_SCN, SCN
from repro.redo.records import ChangeVector, CVOp, RedoRecord
from repro.sim.cpu import CpuNode
from repro.sim.scheduler import Actor, Scheduler

#: Simulated CPU seconds to apply one change vector.
APPLY_COST_PER_CV = 1e-6


class ApplyStall(Exception):
    """Raised by an applier when a CV cannot be applied *yet* -- e.g. a
    data CV for a table whose create-table marker is still queued on
    another worker.  The worker keeps the CV at its queue head and retries
    on its next step; cross-worker SCN progress resolves the dependency."""


class CVApplier(Protocol):
    """What a standby database must provide to recovery workers."""

    def apply_cv(self, cv: ChangeVector, scn: SCN) -> None:
        ...


#: Sniffer signature: (cv, scn, worker_id, owner) -> True if mined, False
#: on a latch miss (the worker must retry the same CV).
Sniffer = Callable[[ChangeVector, SCN, WorkerId, object], bool]

#: Flush helper signature: (worker_id, batch) -> nodes flushed this call;
#: -1 when a worklink exists but draining is blocked (the worker is
#: *waiting* on the flush, accounted separately from flush work).
FlushHelper = Callable[[WorkerId, int], int]


class ApplyDistributor:
    """Hashes CVs of merged records onto per-worker queues."""

    def __init__(self, n_workers: int) -> None:
        if n_workers < 1:
            raise ValueError("need at least one recovery worker")
        self.n_workers = n_workers
        self.queues: list[deque[tuple[SCN, ChangeVector]]] = [
            deque() for __ in range(n_workers)
        ]
        #: Highest SCN fully handed out to the queues.
        self.distributed_through: SCN = NULL_SCN

    def worker_for(self, cv: ChangeVector) -> WorkerId:
        return hash(cv.dba) % self.n_workers

    def distribute(self, records: list[RedoRecord]) -> int:
        """Route every CV of the records; returns the CV count."""
        routed = 0
        for record in records:
            for cv in record.cvs:
                self.queues[self.worker_for(cv)].append((record.scn, cv))
                routed += 1
            if record.scn > self.distributed_through:
                self.distributed_through = record.scn
        return routed

    def note_applied(self, cv: ChangeVector) -> None:
        """Hook invoked by a worker after applying one CV (dependency
        bookkeeping for subclasses; the static hash scheme needs none)."""

    def pending(self) -> int:
        return sum(len(q) for q in self.queues)


class DependencyAwareDistributor(ApplyDistributor):
    """Routes CVs along a lightweight transaction dependency graph.

    Static DBA hashing (the base class) guarantees per-block SCN order by
    construction, but pays for it twice on cross-partition transactions:
    a data CV whose create-table marker hashed to another worker blocks in
    :class:`ApplyStall` retries until that worker catches up, and load
    imbalance leaves queues idle while one hash bucket backs up.

    This distributor keeps the same correctness invariant -- all CVs for
    one DBA apply in SCN order -- by tracking *writes-to-DBA edges*
    explicitly: a CV for a block with in-flight (queued, unapplied) CVs
    chains onto the owning worker's queue; an unencumbered CV goes to the
    least-loaded queue.  Object-creation edges are tracked the same way:
    while a create-table marker is queued, every CV touching its objects
    follows it onto the same worker, so the dictionary dependency that
    triggers ``ApplyStall`` under hashing is ordered away entirely.

    Workers report completions through :meth:`note_applied`; entries drop
    from the edge maps when their in-flight count reaches zero.
    """

    chained_cvs = obs.view("_chained_cvs")

    def __init__(self, n_workers: int) -> None:
        super().__init__(n_workers)
        #: DBA -> (owning worker, in-flight CV count).
        self._dba_owner: dict[int, list] = {}
        #: object_id -> (owning worker, in-flight creation-marker count).
        self._object_owner: dict[int, list] = {}
        self._chained_cvs = obs.counter("adg.distributor.chained_cvs")

    def _least_loaded(self) -> WorkerId:
        best = 0
        best_len = len(self.queues[0])
        for i in range(1, self.n_workers):
            length = len(self.queues[i])
            if length < best_len:
                best, best_len = i, length
        return best

    def worker_for(self, cv: ChangeVector) -> WorkerId:
        entry = self._dba_owner.get(cv.dba)
        if entry is not None:
            return entry[0]
        if cv.is_data or cv.op is CVOp.TRUNCATE:
            obj = self._object_owner.get(cv.object_id)
            if obj is not None:
                return obj[0]
        return self._least_loaded()

    def distribute(self, records: list[RedoRecord]) -> int:
        routed = 0
        for record in records:
            for cv in record.cvs:
                worker = self._route(cv)
                self.queues[worker].append((record.scn, cv))
                routed += 1
            if record.scn > self.distributed_through:
                self.distributed_through = record.scn
        return routed

    def _route(self, cv: ChangeVector) -> WorkerId:
        chained = True
        entry = self._dba_owner.get(cv.dba)
        if entry is None:
            worker = None
            if cv.is_data or cv.op is CVOp.TRUNCATE:
                obj = self._object_owner.get(cv.object_id)
                if obj is not None:
                    worker = obj[0]
            if worker is None:
                worker = self._least_loaded()
                chained = False
            entry = [worker, 0]
            self._dba_owner[cv.dba] = entry
        entry[1] += 1
        if chained:
            self._chained_cvs.inc()
        if cv.op is CVOp.DDL_MARKER and cv.payload.kind == "create_table":
            for object_id in cv.payload.object_ids:
                obj = self._object_owner.get(object_id)
                if obj is None:
                    self._object_owner[object_id] = [entry[0], 1]
                else:
                    obj[1] += 1
        return entry[0]

    def note_applied(self, cv: ChangeVector) -> None:
        entry = self._dba_owner.get(cv.dba)
        if entry is not None:
            entry[1] -= 1
            if entry[1] <= 0:
                del self._dba_owner[cv.dba]
        if cv.op is CVOp.DDL_MARKER and cv.payload.kind == "create_table":
            for object_id in cv.payload.object_ids:
                obj = self._object_owner.get(object_id)
                if obj is not None:
                    obj[1] -= 1
                    if obj[1] <= 0:
                        del self._object_owner[object_id]


class RecoveryWorker(Actor):
    """One parallel-apply worker process."""

    cvs_applied = obs.view("_cvs_applied")
    sniff_retries = obs.view("_sniff_retries")
    apply_stalls = obs.view("_apply_stalls")
    #: Steps skipped by an installed chaos fault (injected slowness).
    chaos_stalls = obs.view("_chaos_stalls")

    def __init__(
        self,
        worker_id: WorkerId,
        distributor: ApplyDistributor,
        applier: CVApplier,
        sniffer: Optional[Sniffer] = None,
        flush_helper: Optional[FlushHelper] = None,
        batch: int = 64,
        flush_batch: int = 8,
        node: Optional[CpuNode] = None,
        speed: float = 1.0,
        cost_per_cv: float = APPLY_COST_PER_CV,
    ) -> None:
        self.worker_id = worker_id
        self.distributor = distributor
        self.applier = applier
        self.sniffer = sniffer
        self.flush_helper = flush_helper
        self.batch = batch
        self.flush_batch = flush_batch
        self.cost_per_cv = cost_per_cv
        self.node = node
        self.speed = speed
        self.name = f"recovery-worker-{worker_id}"
        self._obs = obs.current()
        self._cvs_applied = obs.counter(
            "adg.worker.cvs_applied", worker=worker_id
        )
        self._sniff_retries = obs.counter(
            "adg.worker.sniff_retries", worker=worker_id
        )
        self._apply_stalls = obs.counter(
            "adg.worker.apply_stalls", worker=worker_id
        )
        self._chaos_stalls = obs.counter(
            "adg.worker.chaos_stalls", worker=worker_id
        )
        #: Simulated seconds spent *blocked* on the cooperative flush
        #: helper (worklink present but drain stalled) -- wait time, kept
        #: out of the coordinator's publish-latency accounting.
        self._coop_flush_wait = obs.histogram(
            "adg.apply.coop_flush_wait", worker=worker_id
        )
        #: Sim time when the current blocked-on-flush episode began, or
        #: None when not blocked.
        self._flush_blocked_since: Optional[float] = None
        self._chaos = sites.declare("adg.apply_worker", owner=self)
        #: SCN of the last CV this worker applied.
        self.applied_scn: SCN = NULL_SCN
        #: True when the queue-head CV was already sniffed but its apply
        #: stalled -- prevents double-mining on the retry.
        self._head_sniffed = False

    # ------------------------------------------------------------------
    def applied_through(self) -> SCN:
        """The SCN through which this worker is definitely caught up.

        With an empty queue the worker has applied everything distributed
        so far; otherwise everything strictly below its queue head.
        """
        queue = self.distributor.queues[self.worker_id]
        if not queue:
            return self.distributor.distributed_through
        head_scn = queue[0][0]
        return head_scn - 1

    # ------------------------------------------------------------------
    def step(self, sched: Scheduler) -> Optional[float]:
        chaos = self._chaos
        if chaos.injectors is not None:
            decision = chaos.consult("step", worker=self.worker_id)
            if decision.action is sites.Action.STALL:
                # injected slowness: burn a step without doing any work
                self._chaos_stalls.inc()
                return self.cost_per_cv * self.batch
        cost = 0.0
        # 1. cooperative invalidation flush (paper, III-D-2): help drain
        #    the worklink before continuing redo apply.  -1 = worklink
        #    exists but the drain is blocked: the worker is waiting, not
        #    working, so the episode lands in coop_flush_wait rather than
        #    being charged to apply/publish latency.
        if self.flush_helper is not None:
            flushed = self.flush_helper(self.worker_id, self.flush_batch)
            if flushed < 0:
                if self._flush_blocked_since is None:
                    self._flush_blocked_since = sched.now
            else:
                if self._flush_blocked_since is not None:
                    self._coop_flush_wait.observe(
                        sched.now - self._flush_blocked_since
                    )
                    self._flush_blocked_since = None
                if flushed:
                    cost += self.cost_per_cv * flushed

        # 2. redo apply in SCN order from this worker's queue.
        queue = self.distributor.queues[self.worker_id]
        tracer = obs.tracer_of(self._obs)
        applied = 0
        while queue and applied < self.batch:
            scn, cv = queue[0]
            if self.sniffer is not None and not self._head_sniffed:
                if not self.sniffer(cv, scn, self.worker_id, self):
                    # bucket latch miss: spin -- retry this CV next step.
                    self._sniff_retries.inc()
                    break
            self._head_sniffed = True
            try:
                self.applier.apply_cv(cv, scn)
            except ApplyStall:
                # dependency on another worker's progress; retry later
                # (already sniffed: _head_sniffed stays set)
                self._apply_stalls.inc()
                break
            self._head_sniffed = False
            queue.popleft()
            self.distributor.note_applied(cv)
            self.applied_scn = scn
            applied += 1
            if tracer is not None:
                tracer.record_applied(scn)
        if applied:
            cost += self.cost_per_cv * applied
            self._cvs_applied.inc(applied)
        return cost if cost > 0 else None
