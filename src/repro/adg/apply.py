"""Parallel redo apply: distributor and recovery workers.

"Redo apply is massively parallelized for Oracle ADG by distributing the
SCN-ordered set of CVs amongst recovery worker processes based on a
hashing scheme.  Each DBA is hashed to a particular recovery worker
identifier, so a recovery worker process can independently process the CVs
it has been assigned, and apply the CVs to database blocks in the SCN
order" (paper, II-A, Fig. 3).

Two DBIM-on-ADG hooks attach here, exactly where the paper puts them:

* a **sniffer** (the Mining Component) sees every CV as a worker applies
  it; a sniff can fail on a journal bucket-latch miss, in which case the
  worker stops its batch and retries the same CV on its next step -- the
  spinning behaviour whose cost the journal's sizing is designed to avoid;
* a **flush helper** lets workers participate in cooperative invalidation
  flush: each step first drains a batch of worklink nodes if a worklink
  exists, then returns to redo apply (paper, III-D-2).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterator, Optional, Protocol

import numpy as np

from repro import obs
from repro.chaos import sites
from repro.common.ids import WorkerId
from repro.common.scn import NULL_SCN, SCN
from repro.redo.batch import OP_CODE, CVBatch, CVChunk
from repro.redo.records import ChangeVector, CVOp, RedoRecord
from repro.sim.cpu import CpuNode
from repro.sim.scheduler import Actor, Scheduler

#: Simulated CPU seconds to apply one change vector.
APPLY_COST_PER_CV = 1e-6


class ApplyStall(Exception):
    """Raised by an applier when a CV cannot be applied *yet* -- e.g. a
    data CV for a table whose create-table marker is still queued on
    another worker.  The worker keeps the CV at its queue head and retries
    on its next step; cross-worker SCN progress resolves the dependency."""


class CVApplier(Protocol):
    """What a standby database must provide to recovery workers."""

    def apply_cv(self, cv: ChangeVector, scn: SCN) -> None:
        ...


#: Sniffer signature: (cv, scn, worker_id, owner) -> True if mined, False
#: on a latch miss (the worker must retry the same CV).
Sniffer = Callable[[ChangeVector, SCN, WorkerId, object], bool]

#: Batch sniffer signature: (chunk, worker_id, owner) -> True once the
#: whole chunk is mined, False on a latch miss (partial progress is kept
#: on the chunk; the worker retries next step).
BatchSniffer = Callable[[CVChunk, WorkerId, object], bool]

#: Flush helper signature: (worker_id, batch) -> nodes flushed this call;
#: -1 when a worklink exists but draining is blocked (the worker is
#: *waiting* on the flush, accounted separately from flush work).
FlushHelper = Callable[[WorkerId, int], int]


class ApplyDistributor:
    """Hashes CVs of merged records onto per-worker queues.

    Accepts both record-at-a-time input (queue items are ``(scn, cv)``
    tuples) and columnar :class:`CVBatch` input, where ``worker_for`` is
    evaluated as one vectorized modulo over the batch's dba array and
    each worker receives a single :class:`CVChunk` per batch.
    """

    def __init__(self, n_workers: int) -> None:
        if n_workers < 1:
            raise ValueError("need at least one recovery worker")
        self.n_workers = n_workers
        #: Per-worker queues of ``(scn, cv)`` tuples and/or CVChunks.
        self.queues: list[deque] = [deque() for __ in range(n_workers)]
        #: Highest SCN fully handed out to the queues.
        self.distributed_through: SCN = NULL_SCN
        #: CVs per distributed columnar batch.
        self._batch_cvs = obs.histogram("adg.apply.batch_cvs")

    def worker_for(self, cv: ChangeVector) -> WorkerId:
        return hash(cv.dba) % self.n_workers

    def _workers_for_dbas(self, dbas: np.ndarray) -> np.ndarray:
        """Vectorized ``worker_for``: CPython's hash of an int64-range
        int is the int itself except hash(-1) == -2, so the array form
        routes identically to the scalar form."""
        return np.where(dbas == -1, -2, dbas) % self.n_workers

    def distribute(self, items: list) -> int:
        """Route every CV of the items (RedoRecords and/or CVBatches);
        returns the CV count."""
        routed = 0
        for item in items:
            if isinstance(item, CVBatch):
                routed += self._distribute_batch(item)
                continue
            for cv in item.cvs:
                self.queues[self.worker_for(cv)].append((item.scn, cv))
                routed += 1
            if item.scn > self.distributed_through:
                self.distributed_through = item.scn
        return routed

    def _distribute_batch(self, batch: CVBatch) -> int:
        n_cvs = batch.n_cvs
        if n_cvs:
            if self.n_workers == 1:
                self.queues[0].append(
                    CVChunk(batch, np.arange(n_cvs, dtype=np.int64))
                )
            else:
                workers = self._workers_for_dbas(batch.dbas)
                order = np.argsort(workers, kind="stable")
                bounds = np.searchsorted(
                    workers[order], np.arange(self.n_workers + 1)
                )
                for w in range(self.n_workers):
                    lo, hi = int(bounds[w]), int(bounds[w + 1])
                    if hi > lo:
                        # stable sort keeps SCN order within the worker
                        self.queues[w].append(CVChunk(batch, order[lo:hi]))
            self._batch_cvs.observe(n_cvs)
        if batch.n_records and batch.last_scn > self.distributed_through:
            self.distributed_through = batch.last_scn
        return n_cvs

    def note_applied(self, cv: ChangeVector) -> None:
        """Hook invoked by a worker after applying one CV (dependency
        bookkeeping for subclasses; the static hash scheme needs none)."""

    def _queue_load(self, worker: WorkerId) -> int:
        """Pending CVs on one worker's queue (chunk-aware)."""
        total = 0
        for item in self.queues[worker]:
            total += len(item) if isinstance(item, CVChunk) else 1
        return total

    def pending(self) -> int:
        return sum(self._queue_load(w) for w in range(self.n_workers))

    def queued_cvs(self) -> Iterator[ChangeVector]:
        """Every still-queued (unapplied) ChangeVector, identity-
        preserving -- the instant-restart tail replay excludes these."""
        for queue in self.queues:
            for item in queue:
                if isinstance(item, CVChunk):
                    yield from item.remaining_cvs()
                else:
                    yield item[1]


class DependencyAwareDistributor(ApplyDistributor):
    """Routes CVs along a lightweight transaction dependency graph.

    Static DBA hashing (the base class) guarantees per-block SCN order by
    construction, but pays for it twice on cross-partition transactions:
    a data CV whose create-table marker hashed to another worker blocks in
    :class:`ApplyStall` retries until that worker catches up, and load
    imbalance leaves queues idle while one hash bucket backs up.

    This distributor keeps the same correctness invariant -- all CVs for
    one DBA apply in SCN order -- by tracking *writes-to-DBA edges*
    explicitly: a CV for a block with in-flight (queued, unapplied) CVs
    chains onto the owning worker's queue; an unencumbered CV goes to the
    least-loaded queue.  Object-creation edges are tracked the same way:
    while a create-table marker is queued, every CV touching its objects
    follows it onto the same worker, so the dictionary dependency that
    triggers ``ApplyStall`` under hashing is ordered away entirely.

    Workers report completions through :meth:`note_applied`; entries drop
    from the edge maps when their in-flight count reaches zero.
    """

    chained_cvs = obs.view("_chained_cvs")

    def __init__(self, n_workers: int) -> None:
        super().__init__(n_workers)
        #: DBA -> (owning worker, in-flight CV count).
        self._dba_owner: dict[int, list] = {}
        #: object_id -> (owning worker, in-flight creation-marker count).
        self._object_owner: dict[int, list] = {}
        self._chained_cvs = obs.counter("adg.distributor.chained_cvs")

    def _least_loaded(self) -> WorkerId:
        best = 0
        best_len = len(self.queues[0])
        for i in range(1, self.n_workers):
            length = len(self.queues[i])
            if length < best_len:
                best, best_len = i, length
        return best

    def worker_for(self, cv: ChangeVector) -> WorkerId:
        entry = self._dba_owner.get(cv.dba)
        if entry is not None:
            return entry[0]
        if cv.is_data or cv.op is CVOp.TRUNCATE:
            obj = self._object_owner.get(cv.object_id)
            if obj is not None:
                return obj[0]
        return self._least_loaded()

    def distribute(self, items: list) -> int:
        routed = 0
        for item in items:
            if isinstance(item, CVBatch):
                routed += self._distribute_batch(item)
                continue
            for cv in item.cvs:
                worker = self._route(cv)
                self.queues[worker].append((item.scn, cv))
                routed += 1
            if item.scn > self.distributed_through:
                self.distributed_through = item.scn
        return routed

    def _distribute_batch(self, batch: CVBatch) -> int:
        """Batch-wise dependency routing: one routing decision per
        *dba run* (all of a batch's CVs for one block) instead of one per
        CV.  Runs are processed in first-occurrence (SCN) order so DDL
        creation markers seed object owners before later runs consult
        them, exactly as the per-CV path would."""
        n_cvs = batch.n_cvs
        if not n_cvs:
            if batch.n_records and batch.last_scn > self.distributed_through:
                self.distributed_through = batch.last_scn
            return 0
        dbas = batch.dbas
        ops = batch.ops
        cvs = batch.cvs
        order = np.argsort(dbas, kind="stable")
        sorted_dbas = dbas[order]
        is_run_start = np.empty(n_cvs, dtype=bool)
        is_run_start[0] = True
        np.not_equal(sorted_dbas[1:], sorted_dbas[:-1], out=is_run_start[1:])
        run_starts = np.nonzero(is_run_start)[0]
        run_ends = np.append(run_starts[1:], n_cvs)
        run_order = np.argsort(order[run_starts])
        loads = [self._queue_load(w) for w in range(self.n_workers)]
        per_worker: list[list[np.ndarray]] = [
            [] for __ in range(self.n_workers)
        ]
        ddl_code = OP_CODE[CVOp.DDL_MARKER]
        has_ddl = bool(np.any(ops == ddl_code))
        chained = 0
        for r in run_order:
            lo, hi = int(run_starts[r]), int(run_ends[r])
            positions = order[lo:hi]  # ascending: SCN order in the run
            count = hi - lo
            dba = int(sorted_dbas[lo])
            entry = self._dba_owner.get(dba)
            if entry is None:
                worker = None
                first_cv = cvs[int(positions[0])]
                if first_cv.is_data or first_cv.op is CVOp.TRUNCATE:
                    obj = self._object_owner.get(first_cv.object_id)
                    if obj is not None:
                        worker = obj[0]
                if worker is None:
                    worker = min(
                        range(self.n_workers), key=loads.__getitem__
                    )
                    chained += count - 1
                else:
                    chained += count
                entry = [worker, 0]
                self._dba_owner[dba] = entry
            else:
                chained += count
            entry[1] += count
            worker = entry[0]
            if has_ddl:
                for p in positions[ops[positions] == ddl_code]:
                    payload = cvs[int(p)].payload
                    if payload.kind == "create_table":
                        for object_id in payload.object_ids:
                            obj = self._object_owner.get(object_id)
                            if obj is None:
                                self._object_owner[object_id] = [worker, 1]
                            else:
                                obj[1] += 1
            loads[worker] += count
            per_worker[worker].append(positions)
        for w, runs in enumerate(per_worker):
            if runs:
                indices = np.sort(np.concatenate(runs))
                self.queues[w].append(CVChunk(batch, indices))
        if chained:
            self._chained_cvs.inc(chained)
        self._batch_cvs.observe(n_cvs)
        if batch.last_scn > self.distributed_through:
            self.distributed_through = batch.last_scn
        return n_cvs

    def _route(self, cv: ChangeVector) -> WorkerId:
        chained = True
        entry = self._dba_owner.get(cv.dba)
        if entry is None:
            worker = None
            if cv.is_data or cv.op is CVOp.TRUNCATE:
                obj = self._object_owner.get(cv.object_id)
                if obj is not None:
                    worker = obj[0]
            if worker is None:
                worker = self._least_loaded()
                chained = False
            entry = [worker, 0]
            self._dba_owner[cv.dba] = entry
        entry[1] += 1
        if chained:
            self._chained_cvs.inc()
        if cv.op is CVOp.DDL_MARKER and cv.payload.kind == "create_table":
            for object_id in cv.payload.object_ids:
                obj = self._object_owner.get(object_id)
                if obj is None:
                    self._object_owner[object_id] = [entry[0], 1]
                else:
                    obj[1] += 1
        return entry[0]

    def note_applied(self, cv: ChangeVector) -> None:
        entry = self._dba_owner.get(cv.dba)
        if entry is not None:
            entry[1] -= 1
            if entry[1] <= 0:
                del self._dba_owner[cv.dba]
        if cv.op is CVOp.DDL_MARKER and cv.payload.kind == "create_table":
            for object_id in cv.payload.object_ids:
                obj = self._object_owner.get(object_id)
                if obj is not None:
                    obj[1] -= 1
                    if obj[1] <= 0:
                        del self._object_owner[object_id]


class RecoveryWorker(Actor):
    """One parallel-apply worker process."""

    cvs_applied = obs.view("_cvs_applied")
    sniff_retries = obs.view("_sniff_retries")
    apply_stalls = obs.view("_apply_stalls")
    #: Steps skipped by an installed chaos fault (injected slowness).
    chaos_stalls = obs.view("_chaos_stalls")

    def __init__(
        self,
        worker_id: WorkerId,
        distributor: ApplyDistributor,
        applier: CVApplier,
        sniffer: Optional[Sniffer] = None,
        flush_helper: Optional[FlushHelper] = None,
        batch: int = 64,
        flush_batch: int = 8,
        node: Optional[CpuNode] = None,
        speed: float = 1.0,
        cost_per_cv: float = APPLY_COST_PER_CV,
        batch_sniffer: Optional[BatchSniffer] = None,
    ) -> None:
        self.worker_id = worker_id
        self.distributor = distributor
        self.applier = applier
        self.sniffer = sniffer
        self.batch_sniffer = batch_sniffer
        #: Static dba routing needs no per-CV note_applied bookkeeping,
        #: so the chunk apply loop can skip the call entirely.
        self._static_routing = (
            type(distributor).note_applied is ApplyDistributor.note_applied
        )
        self.flush_helper = flush_helper
        self.batch = batch
        self.flush_batch = flush_batch
        self.cost_per_cv = cost_per_cv
        self.node = node
        self.speed = speed
        self.name = f"recovery-worker-{worker_id}"
        self._obs = obs.current()
        self._cvs_applied = obs.counter(
            "adg.worker.cvs_applied", worker=worker_id
        )
        self._sniff_retries = obs.counter(
            "adg.worker.sniff_retries", worker=worker_id
        )
        self._apply_stalls = obs.counter(
            "adg.worker.apply_stalls", worker=worker_id
        )
        self._chaos_stalls = obs.counter(
            "adg.worker.chaos_stalls", worker=worker_id
        )
        #: Simulated seconds spent *blocked* on the cooperative flush
        #: helper (worklink present but drain stalled) -- wait time, kept
        #: out of the coordinator's publish-latency accounting.
        self._coop_flush_wait = obs.histogram(
            "adg.apply.coop_flush_wait", worker=worker_id
        )
        #: Sim time when the current blocked-on-flush episode began, or
        #: None when not blocked.
        self._flush_blocked_since: Optional[float] = None
        self._chaos = sites.declare("adg.apply_worker", owner=self)
        #: SCN of the last CV this worker applied.
        self.applied_scn: SCN = NULL_SCN
        #: True when the queue-head CV was already sniffed but its apply
        #: stalled -- prevents double-mining on the retry.
        self._head_sniffed = False

    # ------------------------------------------------------------------
    def applied_through(self) -> SCN:
        """The SCN through which this worker is definitely caught up.

        With an empty queue the worker has applied everything distributed
        so far; otherwise everything strictly below its queue head.
        """
        queue = self.distributor.queues[self.worker_id]
        if not queue:
            return self.distributor.distributed_through
        head = queue[0]
        head_scn = head[0] if type(head) is tuple else head.head_scn
        return head_scn - 1

    # ------------------------------------------------------------------
    def step(self, sched: Scheduler) -> Optional[float]:
        chaos = self._chaos
        if chaos.injectors is not None:
            decision = chaos.consult("step", worker=self.worker_id)
            if decision.action is sites.Action.STALL:
                # injected slowness: burn a step without doing any work
                self._chaos_stalls.inc()
                return self.cost_per_cv * self.batch
        cost = 0.0
        # 1. cooperative invalidation flush (paper, III-D-2): help drain
        #    the worklink before continuing redo apply.  -1 = worklink
        #    exists but the drain is blocked: the worker is waiting, not
        #    working, so the episode lands in coop_flush_wait rather than
        #    being charged to apply/publish latency.
        if self.flush_helper is not None:
            flushed = self.flush_helper(self.worker_id, self.flush_batch)
            if flushed < 0:
                if self._flush_blocked_since is None:
                    self._flush_blocked_since = sched.now
            else:
                if self._flush_blocked_since is not None:
                    self._coop_flush_wait.observe(
                        sched.now - self._flush_blocked_since
                    )
                    self._flush_blocked_since = None
                if flushed:
                    cost += self.cost_per_cv * flushed

        # 2. redo apply in SCN order from this worker's queue.
        queue = self.distributor.queues[self.worker_id]
        tracer = obs.tracer_of(self._obs)
        applied = 0
        while queue and applied < self.batch:
            head = queue[0]
            if isinstance(head, CVChunk):
                done, stop = self._apply_chunk_step(
                    head, self.batch - applied, tracer
                )
                applied += done
                if not len(head):
                    queue.popleft()
                if stop:
                    break
                continue
            scn, cv = head
            if self.sniffer is not None and not self._head_sniffed:
                if not self.sniffer(cv, scn, self.worker_id, self):
                    # bucket latch miss: spin -- retry this CV next step.
                    self._sniff_retries.inc()
                    break
            self._head_sniffed = True
            try:
                self.applier.apply_cv(cv, scn)
            except ApplyStall:
                # dependency on another worker's progress; retry later
                # (already sniffed: _head_sniffed stays set)
                self._apply_stalls.inc()
                break
            self._head_sniffed = False
            queue.popleft()
            self.distributor.note_applied(cv)
            self.applied_scn = scn
            applied += 1
            if tracer is not None:
                tracer.record_applied(scn)
        if applied:
            cost += self.cost_per_cv * applied
            self._cvs_applied.inc(applied)
        return cost if cost > 0 else None

    # ------------------------------------------------------------------
    def _apply_chunk_step(
        self, chunk: CVChunk, budget: int, tracer
    ) -> tuple[int, bool]:
        """Mine-then-apply up to ``budget`` CVs of the head chunk.

        The *whole* chunk is mined before any of it applies -- the
        chunk-scale analogue of sniff-then-apply.  This is safe because
        the coordinator's consistency point never passes any worker's
        queue head, so early-mined commits cannot chop ahead of their
        data.  Returns ``(applied, stop)``; ``stop`` means a latch miss
        or apply stall ended this worker's step.
        """
        if not chunk.fully_mined:
            if self.batch_sniffer is not None:
                if not self.batch_sniffer(chunk, self.worker_id, self):
                    # bucket latch miss mid-chunk: partial progress is
                    # kept on the chunk; retry next step.
                    self._sniff_retries.inc()
                    return 0, True
            elif self.sniffer is not None:
                indices = chunk.indices
                scns = chunk.batch.scns
                cvs = chunk.batch.cvs
                while chunk.mined_pos < len(indices):
                    i = int(indices[chunk.mined_pos])
                    if not self.sniffer(
                        cvs[i], int(scns[i]), self.worker_id, self
                    ):
                        self._sniff_retries.inc()
                        return 0, True
                    chunk.mined_pos += 1
            else:
                chunk.mined_pos = len(chunk.indices)
        indices = chunk.indices
        scns = chunk.batch.scns
        cvs = chunk.batch.cvs
        apply_cv = self.applier.apply_cv
        static = self._static_routing
        note_applied = self.distributor.note_applied
        pos = chunk.pos
        end = min(pos + budget, len(indices))
        applied = 0
        stop = False
        last_scn = self.applied_scn
        while pos < end:
            i = int(indices[pos])
            cv = cvs[i]
            scn = int(scns[i])
            try:
                apply_cv(cv, scn)
            except ApplyStall:
                self._apply_stalls.inc()
                stop = True
                break
            pos += 1
            applied += 1
            last_scn = scn
            if not static:
                note_applied(cv)
            if tracer is not None:
                tracer.record_applied(scn)
        chunk.pos = pos
        if applied:
            self.applied_scn = last_scn
        return applied, stop
