"""The log merger: SCN-ordering redo from multiple primary threads.

"On the Standby instance, a Log Merger process orders the redo records
based on their SCN" (paper, II-A).  A record at SCN ``s`` can only be
released once every thread has delivered redo *past* ``s`` -- otherwise a
slower thread could still deliver an earlier record.  The merge watermark
is therefore the minimum over threads of the highest received SCN, which
is why idle primary instances emit heartbeat redo (see
``repro.db.primary``): without it, one quiet instance would stall
recovery for the whole cluster.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Optional

from repro import obs
from repro.common.scn import SCN
from repro.redo.records import RedoRecord
from repro.redo.shipping import RedoReceiver
from repro.sim.cpu import CpuNode
from repro.sim.scheduler import Actor, Scheduler


class LogMerger(Actor):
    """Merges per-thread inbound queues into one SCN-ordered stream."""

    #: Simulated CPU seconds to merge one record.
    COST_PER_RECORD = 1e-6

    #: Records released past the merge watermark in SCN order.
    records_merged = obs.view("_records_merged")

    def __init__(
        self,
        receiver: RedoReceiver,
        batch: int = 256,
        node: Optional[CpuNode] = None,
        name: str = "log-merger",
    ) -> None:
        self.receiver = receiver
        self.batch = batch
        self.node = node
        self.name = name
        self._heap: list[tuple[SCN, int, RedoRecord]] = []
        self._seq = 0
        #: SCN-ordered records ready for the apply distributor.
        self.merged: deque[RedoRecord] = deque()
        self.merged_through_scn: SCN = 0
        self._obs = obs.current()
        self._records_merged = obs.counter("adg.merger.records_merged")

    # ------------------------------------------------------------------
    def _watermark(self) -> SCN:
        scns = self.receiver.received_scn.values()
        return min(scns) if scns else 0

    def merge_available(self) -> int:
        """Pull queued records into the heap, release those at or below the
        watermark in SCN order.  Returns the number released."""
        for thread in self.receiver.threads:
            queue = self.receiver.queue(thread)
            while queue:
                record = queue.popleft()
                self._seq += 1
                heapq.heappush(self._heap, (record.scn, self._seq, record))
        watermark = self._watermark()
        released = 0
        tracer = obs.tracer_of(self._obs)
        while self._heap and self._heap[0][0] <= watermark:
            scn, __, record = heapq.heappop(self._heap)
            self.merged.append(record)
            self.merged_through_scn = max(self.merged_through_scn, scn)
            released += 1
            if tracer is not None:
                tracer.record_merged(record)
        if released:
            self._records_merged.inc(released)
        return released

    def take_merged(self, n: int) -> list[RedoRecord]:
        """Consume up to ``n`` merged records (distributor side)."""
        out = []
        while self.merged and len(out) < n:
            out.append(self.merged.popleft())
        return out

    @property
    def pending_merged(self) -> int:
        return len(self.merged)

    # ------------------------------------------------------------------
    def step(self, sched: Scheduler) -> Optional[float]:
        released = 0
        for __ in range(4):  # a few heap rounds per step
            released += self.merge_available()
            if self.receiver.pending() == 0:
                break
        if released == 0:
            return None
        return self.COST_PER_RECORD * released
