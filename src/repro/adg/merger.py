"""The log merger: SCN-ordering redo from multiple primary threads.

"On the Standby instance, a Log Merger process orders the redo records
based on their SCN" (paper, II-A).  A record at SCN ``s`` can only be
released once every thread has delivered redo *past* ``s`` -- otherwise a
slower thread could still deliver an earlier record.  The merge watermark
is therefore the minimum over threads of the highest received SCN, which
is why idle primary instances emit heartbeat redo (see
``repro.db.primary``): without it, one quiet instance would stall
recovery for the whole cluster.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Optional

from repro import obs
from repro.common.scn import SCN
from repro.redo.batch import CVBatch
from repro.redo.records import RedoRecord
from repro.redo.shipping import RedoReceiver
from repro.sim.cpu import CpuNode
from repro.sim.scheduler import Actor, Scheduler


class LogMerger(Actor):
    """Merges per-thread inbound queues into one SCN-ordered stream."""

    #: Simulated CPU seconds to merge one record.
    COST_PER_RECORD = 1e-6

    #: Records released past the merge watermark in SCN order.
    records_merged = obs.view("_records_merged")

    def __init__(
        self,
        receiver: RedoReceiver,
        batch: int = 256,
        node: Optional[CpuNode] = None,
        name: str = "log-merger",
    ) -> None:
        self.receiver = receiver
        self.batch = batch
        self.node = node
        self.name = name
        self._heap: list[tuple[SCN, int, object]] = []
        self._seq = 0
        #: SCN-ordered items (RedoRecords or CVBatch slices) ready for
        #: the apply distributor; both expose ``.scn``.
        self.merged: deque = deque()
        self.merged_through_scn: SCN = 0
        self._obs = obs.current()
        self._records_merged = obs.counter("adg.merger.records_merged")

    # ------------------------------------------------------------------
    def _watermark(self) -> SCN:
        scns = self.receiver.received_scn.values()
        return min(scns) if scns else 0

    def merge_available(self) -> int:
        """Pull queued items into the heap, release those at or below the
        watermark in SCN order.  Returns the number of records released.

        A columnar :class:`CVBatch` is released as the longest *record
        run* that respects global SCN order: bounded by the watermark and
        by the first SCN of the next heap item (another thread's redo may
        interleave), with the remainder pushed back.  A whole batch from
        the only active thread releases in one heap operation.
        """
        for thread in self.receiver.threads:
            queue = self.receiver.queue(thread)
            while queue:
                item = queue.popleft()
                self._seq += 1
                heapq.heappush(self._heap, (item.scn, self._seq, item))
        watermark = self._watermark()
        released = 0
        tracer = obs.tracer_of(self._obs)
        while self._heap and self._heap[0][0] <= watermark:
            scn, __, item = heapq.heappop(self._heap)
            if isinstance(item, CVBatch):
                limit = watermark
                if self._heap and self._heap[0][0] < limit:
                    # records past the next item's first SCN must wait
                    # behind it; equal SCNs may interleave either way
                    limit = self._heap[0][0]
                run, rest = item.split_at_scn(limit)
                if rest is not None:
                    self._seq += 1
                    heapq.heappush(
                        self._heap, (rest.scn, self._seq, rest)
                    )
                self.merged.append(run)
                self.merged_through_scn = max(
                    self.merged_through_scn, run.last_scn
                )
                released += run.n_records
                if tracer is not None:
                    for view in run.record_views():
                        tracer.record_merged(view)
                continue
            self.merged.append(item)
            self.merged_through_scn = max(self.merged_through_scn, scn)
            released += 1
            if tracer is not None:
                tracer.record_merged(item)
        if released:
            self._records_merged.inc(released)
        return released

    def take_merged(self, n: int) -> list:
        """Consume merged items worth up to ``n`` records (distributor
        side); items are RedoRecords or CVBatch slices."""
        out = []
        taken = 0
        while self.merged and taken < n:
            item = self.merged.popleft()
            out.append(item)
            taken += item.n_records if isinstance(item, CVBatch) else 1
        return out

    @property
    def pending_merged(self) -> int:
        return len(self.merged)

    # ------------------------------------------------------------------
    def step(self, sched: Scheduler) -> Optional[float]:
        released = 0
        for __ in range(4):  # a few heap rounds per step
            released += self.merge_available()
            if self.receiver.pending() == 0:
                break
        if released == 0:
            return None
        return self.COST_PER_RECORD * released
