"""The recovery coordinator: consistency points and QuerySCN advancement.

The coordinator periodically computes the *consistency point* -- the
highest SCN up to which every recovery worker has finished applying (also
bounded by the merger's progress, since unmerged redo may still carry lower
SCNs).  Before publishing it as the new QuerySCN it runs the DBIM-on-ADG
advancement protocol (paper, III-D):

1. ask the flush protocol to *chop* the IM-ADG Commit Table into a
   worklink for every transaction with commitSCN <= the target, and
   process DDL information (drop IMCUs whose object definition changed)
   -- both strictly pre-publication;
2. drain the worklink -- the coordinator flushes batches itself and the
   recovery workers help via cooperative flush;
3. take the quiesce lock exclusively (blocking population snapshot
   capture), publish the new QuerySCN, release the lock.

Without a flush protocol installed (plain ADG, the paper's "without
DBIM-on-ADG" baseline) steps 1-3 vanish and publication is immediate.
"""

from __future__ import annotations

from typing import Optional, Protocol

from repro import obs
from repro.chaos import sites
from repro.common.latch import QuiesceLock
from repro.common.scn import SCN
from repro.adg.apply import ApplyDistributor, RecoveryWorker
from repro.adg.merger import LogMerger
from repro.adg.queryscn import QuerySCNPublisher
from repro.adg.strategy import ConsistencyPointStrategy, EagerFlushStrategy
from repro.sim.cpu import CpuNode
from repro.sim.scheduler import Actor, Scheduler

#: Simulated CPU seconds for one coordinator bookkeeping pass.
COORDINATION_COST = 2e-6
#: Simulated CPU seconds per worklink node flushed by the coordinator.
FLUSH_COST_PER_NODE = 1e-6


class AdvanceProtocol(Protocol):
    """What the DBIM-on-ADG flush component exposes to the coordinator."""

    def begin_advance(self, target_scn: SCN) -> None:
        """Chop the commit table into the worklink for ``target_scn`` and
        process DDL information (paper III-D steps 1 and 3): DDL-affected
        IMCUs are dropped *before* publication so no query at the new
        QuerySCN can see a stale object definition."""
        ...

    def coordinator_flush(self, batch: int) -> int:
        """Coordinator-side drain; returns nodes flushed."""
        ...

    def is_advance_complete(self) -> bool:
        """True once the worklink is drained and remote acks are in."""
        ...

    def finish_advance(self, target_scn: SCN) -> None:
        """Post-publication bookkeeping: retire the drained worklink.
        No DDL work happens here -- that already ran in
        :meth:`begin_advance`, pre-publication."""
        ...


class RecoveryCoordinator(Actor):
    """Tracks apply progress; advances the QuerySCN."""

    advancements = obs.view("_advancements")
    publish_latency_total = obs.view("_publish_latency_total")
    quiesce_wait_retries = obs.view("_quiesce_wait_retries")
    #: Publications postponed by an installed chaos STALL fault.
    publish_stalls = obs.view("_publish_stalls")
    #: Publications postponed by an installed chaos DELAY fault (counted
    #: separately: a delay names its own duration, a stall retries).
    publish_delays = obs.view("_publish_delays")
    #: Wall time publications spent blocked on chaos stalls or the
    #: quiesce lock -- excluded from the *adjusted* latency metrics.
    publish_stall_time_total = obs.view("_publish_stall_time_total")

    def __init__(
        self,
        merger: LogMerger,
        distributor: ApplyDistributor,
        workers: list[RecoveryWorker],
        query_scn: QuerySCNPublisher,
        quiesce_lock: QuiesceLock,
        advance_protocol: Optional[AdvanceProtocol] = None,
        interval: float = 0.01,
        distribute_batch: int = 512,
        flush_batch: int = 32,
        node: Optional[CpuNode] = None,
        name: str = "recovery-coordinator",
        strategy: Optional[ConsistencyPointStrategy] = None,
    ) -> None:
        self.merger = merger
        self.distributor = distributor
        self.workers = workers
        self.query_scn = query_scn
        self.quiesce_lock = quiesce_lock
        self.advance_protocol = advance_protocol
        self.strategy = strategy or EagerFlushStrategy()
        self.strategy.bind(self)
        self.interval = interval
        self.distribute_batch = distribute_batch
        self.flush_batch = flush_batch
        self.node = node
        self.name = name
        #: Target of an in-flight advancement, or None when idle.
        self._advancing_to: Optional[SCN] = None
        self._last_check = -1.0
        # statistics
        self._obs = obs.current()
        self._advancements = obs.counter("adg.coordinator.advancements")
        self._publish_latency_total = obs.counter(
            "adg.coordinator.publish_latency_total"
        )
        self._quiesce_wait_retries = obs.counter(
            "adg.coordinator.quiesce_wait_retries"
        )
        self._publish_stalls = obs.counter("adg.coordinator.publish_stalls")
        self._publish_delays = obs.counter("adg.coordinator.publish_delays")
        self._publish_stall_time_total = obs.counter(
            "adg.coordinator.publish_stall_time_total"
        )
        self._publish_latency_hist = obs.histogram(
            "adg.coordinator.publish_latency"
        )
        self._adjusted_latency_hist = obs.histogram(
            "adg.coordinator.publish_latency_adjusted"
        )
        self._advance_started_at = 0.0
        #: When the in-flight publication first got postponed (chaos
        #: stall, blocked worklink drain or quiesce-lock miss), or None
        #: while unblocked.
        self._stalled_since: Optional[float] = None
        #: Blocked time already accumulated by *closed* episodes of the
        #: in-flight advancement (a worklink drain can block and unblock
        #: several times before publication).
        self._stall_accum = 0.0
        self._chaos = sites.declare("adg.queryscn_publish", owner=self)

    # ------------------------------------------------------------------
    def consistency_point(self) -> SCN:
        """Highest SCN with every prior change merged, distributed and
        applied."""
        point = self.merger.merged_through_scn
        # Unmerged-but-received redo is already counted: merged_through_scn
        # only moves past what the watermark released.  Undistributed
        # merged records bound progress too.
        if self.merger.pending_merged:
            first_pending = self.merger.merged[0].scn
            point = min(point, first_pending - 1)
        for worker in self.workers:
            point = min(point, worker.applied_through())
        return point

    # ------------------------------------------------------------------
    def step(self, sched: Scheduler) -> Optional[float]:
        cost = 0.0
        # keep the pipeline moving: hand merged records to the workers
        records = self.merger.take_merged(self.distribute_batch)
        if records:
            routed = self.distributor.distribute(records)
            cost += COORDINATION_COST + 1e-7 * routed

        strategy = self.strategy
        if self._advancing_to is None or strategy.accepts_new_candidates:
            if sched.now - self._last_check >= self.interval:
                self._last_check = sched.now
                cost += COORDINATION_COST
                candidate = self.consistency_point()
                if candidate > self.query_scn.value:
                    if self._advancing_to is None:
                        self._advancing_to = candidate
                        self._advance_started_at = sched.now
                        strategy.begin(candidate, sched.now)
                    else:
                        strategy.offer(candidate, sched.now)
                        if candidate > self._advancing_to:
                            self._advancing_to = candidate
        if self._advancing_to is not None:
            cost += self._continue_advance(sched)
        elif strategy.pending_background():
            # deferred (post-publication) work, e.g. journal anchor
            # retirement staged past the quiesce window
            drained = strategy.background_drain(self.flush_batch)
            cost += FLUSH_COST_PER_NODE * max(drained, 1)
        return cost if cost > 0 else None

    # ------------------------------------------------------------------
    def _continue_advance(self, sched: Scheduler) -> float:
        cost = 0.0
        strategy = self.strategy
        flushed = strategy.drain(self.flush_batch)
        if flushed is not None:
            cost += FLUSH_COST_PER_NODE * max(flushed, 1)
            if flushed < 0:
                # worklink exists but draining is blocked: waiting, not
                # flushing -- the episode is excluded from adjusted latency
                if self._stalled_since is None:
                    self._stalled_since = sched.now
            elif self._stalled_since is not None:
                self._stall_accum += sched.now - self._stalled_since
                self._stalled_since = None
            if not strategy.ready():
                return cost
        # Invalidation flush done: enter the quiesce period and publish.
        target = strategy.publish_scn()
        assert target is not None
        chaos = self._chaos
        if chaos.injectors is not None:
            decision = chaos.consult("publish", target=target)
            if decision.action is sites.Action.STALL:
                # hold the publication; retried on the next step
                self._publish_stalls.inc()
                if self._stalled_since is None:
                    self._stalled_since = sched.now
                return cost + COORDINATION_COST
            if decision.action is sites.Action.DELAY:
                # hold the publication for the injected duration: the
                # delay rides on the rescheduling cost so the retry only
                # happens once the delay has elapsed
                self._publish_delays.inc()
                if self._stalled_since is None:
                    self._stalled_since = sched.now
                return cost + COORDINATION_COST + max(decision.delay, 0.0)
        if not self.quiesce_lock.try_acquire_exclusive(self):
            # population is mid-capture; retry next step
            self._quiesce_wait_retries.inc()
            if self._stalled_since is None:
                self._stalled_since = sched.now
            return cost + COORDINATION_COST
        try:
            # strategy work that belongs inside the quiesce window, e.g.
            # swapping staged SMU masks in, strictly pre-publication
            applied = strategy.pre_publish(target)
            cost += FLUSH_COST_PER_NODE * applied
            self.query_scn.publish(target, at_time=sched.now)
        finally:
            self.quiesce_lock.release_exclusive(self)
        strategy.post_publish(target)
        self._advancements.inc()
        latency = sched.now - self._advance_started_at
        # time this advancement spent *blocked* (injected stall, blocked
        # worklink drain or a held quiesce lock) rather than flushing and
        # publishing -- keep the raw total intact but track it so the
        # adjusted latency reflects the protocol's own cost (the Fig. 10
        # quantity).
        stalled = self._stall_accum
        self._stall_accum = 0.0
        if self._stalled_since is not None:
            stalled += sched.now - self._stalled_since
            self._stalled_since = None
        self._publish_latency_total.inc(latency)
        self._publish_stall_time_total.inc(stalled)
        self._publish_latency_hist.observe(latency)
        self._adjusted_latency_hist.observe(latency - stalled)
        self._advancing_to = None
        return cost + COORDINATION_COST

    # ------------------------------------------------------------------
    def reset_advance(self) -> None:
        """Abandon an in-flight advancement (standby instance restart).

        The restart cleared the flush protocol's commit table and
        worklink, so publishing the pre-restart target would skip every
        invalidation the redo tail re-mines below it -- the coordinator
        must re-derive a fresh consistency point from scratch instead.
        """
        self._advancing_to = None
        self._stalled_since = None
        self._stall_accum = 0.0
        # the pre-restart check timestamp must not defer the first
        # post-restart consistency-point check by a stale interval
        self._last_check = -1.0
        self.strategy.reset()

    @property
    def mean_publish_latency(self) -> float:
        """Mean wall time from advance start to publication, *including*
        any time spent blocked on chaos stalls or the quiesce lock."""
        if not self.advancements:
            return 0.0
        return self.publish_latency_total / self.advancements

    @property
    def mean_adjusted_publish_latency(self) -> float:
        """Mean publish latency with blocked wall time (injected stalls,
        quiesce-lock waits) excluded: the advancement protocol's own cost."""
        if not self.advancements:
            return 0.0
        return (
            self.publish_latency_total - self.publish_stall_time_total
        ) / self.advancements
