"""Active Data Guard: parallel redo apply on the physical standby.

Implements section II-A of the paper:

* the **log merger** SCN-orders redo records arriving from multiple
  primary redo threads (``merger.py``);
* **parallel apply**: change vectors are hashed by DBA to recovery worker
  processes, each of which applies its share in SCN order
  (``apply.py``);
* the **recovery coordinator** tracks worker progress, establishes
  consistency points and publishes them as the **QuerySCN** -- the
  Consistent Read snapshot every standby query runs at
  (``coordinator.py``, ``queryscn.py``).

The DBIM-on-ADG machinery (``repro.dbim_adg``) plugs into these
components exactly where the paper places it: mining piggybacks on the
workers' CV stream, invalidation flush rides QuerySCN advancement, and
population synchronises with publication through the quiesce lock.
"""

from repro.adg.queryscn import ListenerFanoutError, QuerySCNPublisher
from repro.adg.merger import LogMerger
from repro.adg.apply import ApplyDistributor, ApplyStall, RecoveryWorker, CVApplier
from repro.adg.coordinator import RecoveryCoordinator, AdvanceProtocol
from repro.adg.strategy import (
    BatchedQuiesceStrategy,
    ConsistencyPointStrategy,
    DeferredDrainStrategy,
    EagerFlushStrategy,
    STRATEGIES,
    create_strategy,
)

__all__ = [
    "QuerySCNPublisher",
    "ListenerFanoutError",
    "LogMerger",
    "ApplyDistributor",
    "ApplyStall",
    "RecoveryWorker",
    "CVApplier",
    "RecoveryCoordinator",
    "AdvanceProtocol",
    "ConsistencyPointStrategy",
    "EagerFlushStrategy",
    "DeferredDrainStrategy",
    "BatchedQuiesceStrategy",
    "STRATEGIES",
    "create_strategy",
]
