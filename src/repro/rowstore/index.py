"""A B+-tree index over one column.

The paper's OLTAP workload drives most of its operations through "fetch
operations via the index" on the identity column, so the index path must be
a genuinely cheap point lookup (in contrast to the full-table scans the
IMCS accelerates).  This is a textbook B+-tree: interior nodes route by
separator keys, leaves hold (key, rowid) pairs and are linked for range
scans.

Visibility note: the index maps *current* key values to row addresses; the
row's own version chain then provides snapshot visibility.  This matches
how the workload uses it (identity keys are immutable), and the limitation
is documented in DESIGN.md.
"""

from __future__ import annotations

import bisect
from typing import Iterator, Optional

from repro.common.ids import RowId


class _Node:
    __slots__ = ("keys", "children", "values", "next_leaf", "is_leaf")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.keys: list = []
        self.children: list[_Node] = []  # interior only
        self.values: list[RowId] = []  # leaf only
        self.next_leaf: Optional[_Node] = None


class BTreeIndex:
    """Unique B+-tree index: key -> RowId."""

    def __init__(self, column: str, order: int = 64) -> None:
        if order < 4:
            raise ValueError("B+-tree order must be >= 4")
        self.column = column
        self.order = order
        self._root = _Node(is_leaf=True)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # -- search ----------------------------------------------------------
    def _find_leaf(self, key) -> _Node:
        node = self._root
        while not node.is_leaf:
            i = bisect.bisect_right(node.keys, key)
            node = node.children[i]
        return node

    def search(self, key) -> Optional[RowId]:
        """Point lookup; None if the key is absent."""
        leaf = self._find_leaf(key)
        i = bisect.bisect_left(leaf.keys, key)
        if i < len(leaf.keys) and leaf.keys[i] == key:
            return leaf.values[i]
        return None

    def range(self, lo=None, hi=None) -> Iterator[tuple[object, RowId]]:
        """Iterate (key, rowid) with lo <= key <= hi (inclusive bounds)."""
        if lo is None:
            node: Optional[_Node] = self._leftmost_leaf()
            i = 0
        else:
            node = self._find_leaf(lo)
            i = bisect.bisect_left(node.keys, lo)
        while node is not None:
            while i < len(node.keys):
                key = node.keys[i]
                if hi is not None and key > hi:
                    return
                yield key, node.values[i]
                i += 1
            node = node.next_leaf
            i = 0

    def _leftmost_leaf(self) -> _Node:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node

    # -- insert ----------------------------------------------------------
    def insert(self, key, rowid: RowId) -> None:
        """Insert or overwrite (unique index: re-insert replaces)."""
        split = self._insert(self._root, key, rowid)
        if split is not None:
            sep, right = split
            new_root = _Node(is_leaf=False)
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root

    def _insert(self, node: _Node, key, rowid: RowId):
        if node.is_leaf:
            i = bisect.bisect_left(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                node.values[i] = rowid  # overwrite
                return None
            node.keys.insert(i, key)
            node.values.insert(i, rowid)
            self._size += 1
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        i = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[i], key, rowid)
        if split is None:
            return None
        sep, right = split
        node.keys.insert(i, sep)
        node.children.insert(i + 1, right)
        if len(node.keys) > self.order:
            return self._split_interior(node)
        return None

    def _split_leaf(self, node: _Node):
        mid = len(node.keys) // 2
        right = _Node(is_leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next_leaf = node.next_leaf
        node.next_leaf = right
        return right.keys[0], right

    def _split_interior(self, node: _Node):
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Node(is_leaf=False)
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep, right

    # -- delete ----------------------------------------------------------
    def delete(self, key) -> bool:
        """Remove ``key``.  Returns True if it was present.

        Uses lazy deletion (no rebalancing): leaves may underflow, which is
        acceptable for an index whose workload is insert/lookup dominated.
        """
        leaf = self._find_leaf(key)
        i = bisect.bisect_left(leaf.keys, key)
        if i < len(leaf.keys) and leaf.keys[i] == key:
            leaf.keys.pop(i)
            leaf.values.pop(i)
            self._size -= 1
            return True
        return False

    def clear(self) -> None:
        self._root = _Node(is_leaf=True)
        self._size = 0

    # -- introspection ----------------------------------------------------
    def depth(self) -> int:
        d = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            d += 1
        return d
