"""The row store: Oracle's traditional on-disk format, in miniature.

This package implements the substrate the paper's protocols are defined
against:

* block-structured heap segments addressed by DBA (``block.py``,
  ``segment.py``),
* row version chains that stand in for undo, enabling SCN-based
  Consistent Read (``version.py``, ``cr.py``),
* heap tables with optional hash/range partitions and B-tree indexes
  (``table.py``, ``index.py``),
* a buffer cache fronting the "datafiles" (``buffer_cache.py``).

Everything a transaction changes here is describable as a *change vector*
against one DBA -- which is exactly what the redo layer ships to the
standby, and what the standby's recovery workers re-apply to an identical
block structure (physical replication).
"""

from repro.rowstore.values import Column, ColumnType, Schema
from repro.rowstore.version import RowVersion, VersionChain
from repro.rowstore.block import DataBlock
from repro.rowstore.segment import BlockStore, Segment
from repro.rowstore.table import Partition, Table
from repro.rowstore.index import BTreeIndex
from repro.rowstore.buffer_cache import BufferCache
from repro.rowstore.cr import TransactionView, visible_version
from repro.rowstore.undo_retention import UndoRetentionManager

__all__ = [
    "Column",
    "ColumnType",
    "Schema",
    "RowVersion",
    "VersionChain",
    "DataBlock",
    "BlockStore",
    "Segment",
    "Partition",
    "Table",
    "BTreeIndex",
    "BufferCache",
    "TransactionView",
    "visible_version",
    "UndoRetentionManager",
]
