"""Segments and the block store ("datafiles").

A segment is the physical storage of one table or partition: an ordered
list of DBAs.  The :class:`BlockStore` owns every block in one database and
allocates DBAs from a single counter, so a DBA uniquely identifies a block
database-wide -- the property the parallel apply hash relies on.

Physical standby semantics: a standby's block store is either a clone of
the primary's (restore from backup) or starts empty and is built purely by
replaying change vectors; both paths produce bit-identical structures.
"""

from __future__ import annotations

import copy
from typing import Iterator, Optional

from repro.common.ids import DBA, ObjectId
from repro.rowstore.block import DataBlock


class BlockStore:
    """All data blocks of one database, addressed by DBA."""

    def __init__(self) -> None:
        self._blocks: dict[DBA, DataBlock] = {}
        self._next_dba: DBA = 1

    def allocate(self, object_id: ObjectId, capacity: int) -> DataBlock:
        """Allocate a fresh block for a segment (primary side)."""
        dba = self._next_dba
        self._next_dba += 1
        block = DataBlock(dba, object_id, capacity)
        self._blocks[dba] = block
        return block

    def ensure(self, dba: DBA, object_id: ObjectId, capacity: int) -> DataBlock:
        """Get block ``dba``, materialising it if absent (standby apply).

        Keeps the DBA counter ahead of any replayed allocation so a
        failed-over standby would not re-issue used DBAs.
        """
        block = self._blocks.get(dba)
        if block is None:
            block = DataBlock(dba, object_id, capacity)
            self._blocks[dba] = block
            if dba >= self._next_dba:
                self._next_dba = dba + 1
        return block

    def get(self, dba: DBA) -> DataBlock:
        return self._blocks[dba]

    def get_optional(self, dba: DBA) -> Optional[DataBlock]:
        return self._blocks.get(dba)

    def __contains__(self, dba: DBA) -> bool:
        return dba in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def clone(self) -> "BlockStore":
        """Deep copy -- used to seed a standby from a 'backup'."""
        return copy.deepcopy(self)


class Segment:
    """The ordered blocks of one table/partition."""

    def __init__(
        self,
        object_id: ObjectId,
        store: BlockStore,
        rows_per_block: int,
    ) -> None:
        self.object_id = object_id
        self._store = store
        self.rows_per_block = rows_per_block
        self._dbas: list[DBA] = []
        #: SCN of the latest TRUNCATE replayed against this segment, or
        #: None.  Parallel apply orders CVs per *block*, not per object,
        #: so a TRUNCATE (reserved DBA) can race the object's data CVs
        #: across workers; recording the wipe SCN lets both sides
        #: commute (see :meth:`truncate` and ``Table._apply_block``).
        self.truncate_scn: Optional[int] = None

    # -- geometry --------------------------------------------------------
    @property
    def dbas(self) -> list[DBA]:
        return list(self._dbas)

    @property
    def n_blocks(self) -> int:
        return len(self._dbas)

    def blocks(self) -> Iterator[DataBlock]:
        for dba in self._dbas:
            yield self._store.get(dba)

    def contains_dba(self, dba: DBA) -> bool:
        return dba in self._dba_set()

    def _dba_set(self) -> set[DBA]:
        # small segments: rebuild cheaply; large segments: cache
        if not hasattr(self, "_cached_dba_set") or len(self._cached_dba_set) != len(self._dbas):  # type: ignore[has-type]
            self._cached_dba_set = set(self._dbas)
        return self._cached_dba_set

    # -- primary-side allocation -----------------------------------------
    def tail_block_with_space(self) -> DataBlock:
        """The block new inserts go to, extending the segment if needed."""
        if self._dbas:
            tail = self._store.get(self._dbas[-1])
            if tail.has_free_slot:
                return tail
        block = self._store.allocate(self.object_id, self.rows_per_block)
        self._dbas.append(block.dba)
        return block

    # -- standby-side materialisation --------------------------------------
    def ensure_block(self, dba: DBA) -> DataBlock:
        """Materialise block ``dba`` within this segment (redo apply)."""
        block = self._store.ensure(dba, self.object_id, self.rows_per_block)
        if dba not in self._dba_set():
            self._dbas.append(dba)
            self._dbas.sort()
            self._cached_dba_set = set(self._dbas)
        return block

    # -- maintenance -------------------------------------------------------
    def truncate(self, scn: int) -> None:
        """Drop all rows as of ``scn``; wiped blocks are deallocated.

        Blocks whose last change is *newer* than ``scn`` survive: on a
        standby, a post-truncate insert (always a fresh DBA -- the block
        store never reuses one) may have been applied by another worker
        before this TRUNCATE CV, and wiping it would lose committed rows.
        """
        survivors: list[DBA] = []
        for dba in self._dbas:
            block = self._store.get(dba)
            if block.last_change_scn > scn:
                survivors.append(dba)
            else:
                block.wipe(scn)
        self._dbas = survivors
        self._cached_dba_set = set(survivors)
        if self.truncate_scn is None or scn > self.truncate_scn:
            self.truncate_scn = scn

    def row_count_current(self) -> int:
        """Number of slots whose current version is a live row (no CR)."""
        count = 0
        for block in self.blocks():
            for __, chain in block.chains():
                current = chain.current
                if current is not None and not current.is_delete:
                    count += 1
        return count
