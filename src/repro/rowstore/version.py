"""Row version chains: the undo mechanism behind Consistent Read.

Oracle keeps before-images in undo segments and reconstructs old block
images by rolling changes back.  The observable contract -- "give me this
row as of SCN s, skipping writers that had not committed by s" -- is
implemented here as a per-row chain of versions ordered newest-first.
Each version records the writing transaction and the SCN at which the
change was made; visibility is decided against a transaction table (see
``cr.py``).

The chain is also what makes the *standby* readable: recovery workers push
versions onto the same structure as they apply change vectors, so a query
at the published QuerySCN simply skips versions whose writers' commit SCNs
are not yet covered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.common.ids import TransactionId
from repro.common.scn import SCN


@dataclass(slots=True)
class RowVersion:
    """One version of one row.

    ``values is None`` marks a delete tombstone.  ``scn`` is the SCN of the
    *change* (the redo record's SCN), not the commit SCN -- commit SCNs live
    in the transaction table, mirroring Oracle's delayed block cleanout.
    """

    values: Optional[tuple]
    xid: TransactionId
    scn: SCN

    @property
    def is_delete(self) -> bool:
        return self.values is None


class VersionChain:
    """Newest-first list of :class:`RowVersion` for one row slot."""

    __slots__ = ("_versions", "truncated")

    def __init__(self) -> None:
        self._versions: list[RowVersion] = []
        #: True once old versions have been pruned; a CR walk that falls off
        #: the end of a truncated chain must raise SnapshotTooOldError.
        self.truncated = False

    def push(self, version: RowVersion) -> None:
        """Record a new change (becomes the current version)."""
        self._versions.append(version)

    @property
    def current(self) -> Optional[RowVersion]:
        """The newest version, or ``None`` for a never-written slot."""
        return self._versions[-1] if self._versions else None

    def __iter__(self) -> Iterator[RowVersion]:
        """Iterate newest to oldest."""
        return reversed(self._versions)

    def __len__(self) -> int:
        return len(self._versions)

    def pop_if(self, xid: TransactionId) -> Optional[RowVersion]:
        """Remove and return the newest version iff ``xid`` wrote it.

        Used by rollback (one compensating change per original change) and
        by the standby's application of UNDO change vectors.
        """
        if self._versions and self._versions[-1].xid == xid:
            return self._versions.pop()
        return None

    def rollback_transaction(self, xid: TransactionId) -> int:
        """Remove every version written by ``xid`` (transaction abort).

        Versions written by one transaction are contiguous at the head of
        the chain only if no other transaction wrote after it; since a row
        is write-locked by its newest uncommitted version, aborting ``xid``
        can only ever need to strip head versions.  Returns the number of
        versions removed.
        """
        removed = 0
        while self._versions and self._versions[-1].xid == xid:
            self._versions.pop()
            removed += 1
        return removed

    def prune(self, keep: int) -> int:
        """Drop all but the newest ``keep`` versions (undo retention).

        Returns the number of versions dropped.  Never drops the current
        version.
        """
        if keep < 1:
            raise ValueError("must keep at least the current version")
        excess = len(self._versions) - keep
        if excess <= 0:
            return 0
        del self._versions[:excess]
        self.truncated = True
        return excess
