"""Column types, schemas and row validation.

The paper's workload table has "101 columns (1 identity column, 50 number
columns and 50 varchar2 columns)"; NUMBER and VARCHAR2 are therefore the
two data types the reproduction needs, and they conveniently map onto the
two encoding families the IMCS implements (numeric arrays and dictionary
encoding).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ColumnType(enum.Enum):
    """Supported column data types."""

    NUMBER = "number"
    VARCHAR2 = "varchar2"

    def validate(self, value: object) -> bool:
        """True if ``value`` is storable in a column of this type."""
        if value is None:
            return True  # NULLs are allowed in any column
        if self is ColumnType.NUMBER:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        return isinstance(value, str)


@dataclass(frozen=True, slots=True)
class Column:
    """One column definition."""

    name: str
    ctype: ColumnType
    nullable: bool = True

    def validate(self, value: object) -> bool:
        if value is None:
            return self.nullable
        return self.ctype.validate(value)


@dataclass(slots=True)
class Schema:
    """An ordered set of columns.

    Supports Oracle's dictionary-only DROP COLUMN: the column is marked
    unused in metadata and projected out of reads, while the stored row
    images keep their original arity (no data blocks change -- which is
    why the standby can replay the DDL purely from a redo marker).
    """

    columns: list[Column]
    _dropped: set[str] = field(default_factory=set)
    # name -> position map; positions never change (DROP COLUMN is
    # dictionary-only), so the map is built once in __post_init__
    _index: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise ValueError("duplicate column names in schema")
        self._index = {c.name: i for i, c in enumerate(self.columns)}

    # -- lookup --------------------------------------------------------
    def column_index(self, name: str) -> int:
        """Physical position of a live column in the stored row tuple."""
        i = self._index.get(name)
        if i is None:
            raise KeyError(f"no such column: {name!r}")
        if name in self._dropped:
            raise KeyError(f"column {name!r} has been dropped")
        return i

    def column(self, name: str) -> Column:
        return self.columns[self.column_index(name)]

    @property
    def live_columns(self) -> list[Column]:
        return [c for c in self.columns if c.name not in self._dropped]

    @property
    def arity(self) -> int:
        """Stored row width (includes dropped columns)."""
        return len(self.columns)

    def is_dropped(self, name: str) -> bool:
        return name in self._dropped

    # -- mutation (DDL) ------------------------------------------------
    def drop_column(self, name: str) -> None:
        """Dictionary-only column drop."""
        self.column_index(name)  # raises if unknown or already dropped
        self._dropped.add(name)

    # -- row validation ------------------------------------------------
    def validate_row(self, values: tuple) -> None:
        """Raise ``ValueError`` unless ``values`` matches this schema."""
        if len(values) != self.arity:
            raise ValueError(
                f"row arity {len(values)} != schema arity {self.arity}"
            )
        for col, value in zip(self.columns, values):
            if col.name in self._dropped:
                continue
            if not col.validate(value):
                raise ValueError(
                    f"value {value!r} invalid for column {col.name} "
                    f"({col.ctype.value})"
                )

    def project(self, values: tuple, names: list[str]) -> tuple:
        """Extract the named columns from a stored row tuple."""
        return tuple(values[self.column_index(n)] for n in names)
