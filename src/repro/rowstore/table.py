"""Heap tables with partitions and indexes.

A table is a set of named partitions (non-partitioned tables get a single
implicit partition), each backed by its own :class:`Segment` with its own
object id -- matching Oracle, where in-memory population is configured per
(sub)partition segment.  This per-segment identity is what lets the
capacity-expansion deployment of Figure 2 populate different SALES
partitions on the primary and the standby.

The mutation API is split in two, mirroring the two sides of ADG:

* **primary-side** ops (``insert_row`` / ``update_row`` / ``delete_row``)
  allocate physical addresses and push versions; the transaction layer
  wraps them and emits redo change vectors;
* **standby-side** ops (``apply_insert`` / ``apply_update`` /
  ``apply_delete``) replay change vectors at the exact addresses the
  primary chose -- physical replication.

Reads are strictly snapshot-consistent via :mod:`repro.rowstore.cr`.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.common.errors import InvalidStateError, ObjectNotFoundError
from repro.common.ids import DBA, ObjectId, RowId, TenantId, TransactionId
from repro.common.scn import SCN
from repro.rowstore.buffer_cache import BufferCache
from repro.rowstore.cr import TransactionView, visible_values
from repro.rowstore.index import BTreeIndex
from repro.rowstore.segment import BlockStore, Segment
from repro.rowstore.values import Schema


class RowLockConflictError(InvalidStateError):
    """A DML hit a row whose newest version belongs to an uncommitted
    transaction (Oracle would enqueue; the workload driver retries)."""


class Partition:
    """One partition: a named segment of the table."""

    def __init__(self, name: str, segment: Segment) -> None:
        self.name = name
        self.segment = segment

    @property
    def object_id(self) -> ObjectId:
        return self.segment.object_id

    def __repr__(self) -> str:
        return f"Partition({self.name!r}, obj={self.object_id})"


class Table:
    """A heap table."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        store: BlockStore,
        object_id_allocator: Callable[[], ObjectId],
        tenant: TenantId = 0,
        rows_per_block: int = 64,
        partition_names: Optional[list[str]] = None,
        partition_fn: Optional[Callable[[tuple], str]] = None,
        buffer_cache: Optional[BufferCache] = None,
    ) -> None:
        self.name = name
        self.schema = schema
        self.tenant = tenant
        self._store = store
        self._alloc_object_id = object_id_allocator
        self.rows_per_block = rows_per_block
        self.buffer_cache = buffer_cache
        self._partition_fn = partition_fn
        self.partitions: dict[str, Partition] = {}
        self._by_object_id: dict[ObjectId, Partition] = {}
        for pname in partition_names or ["P0"]:
            self.add_partition(pname)
        self.indexes: dict[str, BTreeIndex] = {}

    # ------------------------------------------------------------------
    # metadata
    # ------------------------------------------------------------------
    def add_partition(self, name: str, object_id: Optional[ObjectId] = None) -> Partition:
        if name in self.partitions:
            raise InvalidStateError(f"partition {name!r} already exists")
        oid = object_id if object_id is not None else self._alloc_object_id()
        segment = Segment(oid, self._store, self.rows_per_block)
        partition = Partition(name, segment)
        self.partitions[name] = partition
        self._by_object_id[oid] = partition
        return partition

    def partition(self, name: str) -> Partition:
        try:
            return self.partitions[name]
        except KeyError:
            raise ObjectNotFoundError(f"{self.name}: no partition {name!r}")

    def partition_by_object_id(self, object_id: ObjectId) -> Partition:
        try:
            return self._by_object_id[object_id]
        except KeyError:
            raise ObjectNotFoundError(
                f"{self.name}: no partition with object id {object_id}"
            )

    @property
    def object_ids(self) -> list[ObjectId]:
        return list(self._by_object_id)

    @property
    def default_partition(self) -> Partition:
        return next(iter(self.partitions.values()))

    def create_index(self, column: str, order: int = 64) -> BTreeIndex:
        """Create a unique index; existing rows are indexed immediately."""
        self.schema.column_index(column)  # validate
        index = BTreeIndex(column, order=order)
        col = self.schema.column_index(column)
        for partition in self.partitions.values():
            for block in partition.segment.blocks():
                for slot, chain in block.chains():
                    current = chain.current
                    if current is not None and not current.is_delete:
                        index.insert(current.values[col], RowId(block.dba, slot))
        self.indexes[column] = index
        return index

    def _route(self, values: tuple, partition: Optional[str]) -> Partition:
        if partition is not None:
            return self.partition(partition)
        if self._partition_fn is not None:
            return self.partition(self._partition_fn(values))
        return self.default_partition

    def _block_for(self, dba: DBA):
        if self.buffer_cache is not None:
            self.buffer_cache.touch(dba)
        return self._store.get(dba)

    # ------------------------------------------------------------------
    # primary-side DML (called by the transaction layer)
    # ------------------------------------------------------------------
    def insert_row(
        self,
        values: tuple,
        xid: TransactionId,
        scn: SCN,
        partition: Optional[str] = None,
    ) -> tuple[ObjectId, RowId]:
        """Insert and return (object id, physical address) for redo."""
        self.schema.validate_row(values)
        part = self._route(values, partition)
        block = part.segment.tail_block_with_space()
        if self.buffer_cache is not None:
            self.buffer_cache.touch(block.dba)
        rowid = block.append_row(values, xid, scn)
        for column, index in self.indexes.items():
            index.insert(values[self.schema.column_index(column)], rowid)
        return part.object_id, rowid

    def _check_row_lock(
        self, chain, xid: TransactionId, txns: TransactionView
    ) -> None:
        current = chain.current
        if current is None:
            raise ObjectNotFoundError("row slot was never written")
        if current.xid != xid and txns.commit_scn_of(current.xid) is None:
            raise RowLockConflictError(
                f"row locked by uncommitted {current.xid}"
            )

    def update_row(
        self,
        rowid: RowId,
        changes: dict[str, object],
        xid: TransactionId,
        scn: SCN,
        txns: TransactionView,
    ) -> tuple[ObjectId, tuple, tuple]:
        """Update named columns of the row at ``rowid``.

        Returns (object id, old full tuple, new full tuple); the redo layer
        ships the new tuple plus the changed column set.
        """
        block = self._block_for(rowid.dba)
        chain = block.chain(rowid.slot)
        self._check_row_lock(chain, xid, txns)
        current = chain.current
        assert current is not None
        if current.is_delete:
            raise ObjectNotFoundError(f"row {rowid} is deleted")
        old_values = current.values
        assert old_values is not None
        new_values = list(old_values)
        for column, value in changes.items():
            i = self.schema.column_index(column)
            new_values[i] = value
        new_tuple = tuple(new_values)
        self.schema.validate_row(new_tuple)
        block.write_slot(rowid.slot, new_tuple, xid, scn)
        for column, index in self.indexes.items():
            if column in changes:
                i = self.schema.column_index(column)
                index.delete(old_values[i])
                index.insert(new_tuple[i], rowid)
        return block.object_id, old_values, new_tuple

    def delete_row(
        self,
        rowid: RowId,
        xid: TransactionId,
        scn: SCN,
        txns: TransactionView,
    ) -> tuple[ObjectId, tuple]:
        """Delete the row at ``rowid``; returns (object id, old tuple)."""
        block = self._block_for(rowid.dba)
        chain = block.chain(rowid.slot)
        self._check_row_lock(chain, xid, txns)
        current = chain.current
        assert current is not None
        if current.is_delete:
            raise ObjectNotFoundError(f"row {rowid} already deleted")
        old_values = current.values
        assert old_values is not None
        block.write_slot(rowid.slot, None, xid, scn)
        for column, index in self.indexes.items():
            index.delete(old_values[self.schema.column_index(column)])
        return block.object_id, old_values

    # ------------------------------------------------------------------
    # standby-side physical apply
    #
    # Media recovery applies redo to blocks *in* the buffer cache, so every
    # applied block is left resident: the reconcile fetches a scan pays for
    # recently-changed rows are hits, not simulated physical reads.
    # ------------------------------------------------------------------
    def _apply_block(self, object_id: ObjectId, dba: DBA, scn: SCN):
        part = self.partition_by_object_id(object_id)
        segment = part.segment
        truncate_scn = segment.truncate_scn
        if truncate_scn is not None and scn <= truncate_scn:
            # The CV predates a TRUNCATE another worker already replayed:
            # the row is wiped regardless, and re-applying it here would
            # resurrect a ghost visible at post-truncate snapshots.
            return None
        block = segment.ensure_block(dba)
        if self.buffer_cache is not None:
            self.buffer_cache.touch(dba)
        return block

    def apply_insert(
        self,
        object_id: ObjectId,
        dba: DBA,
        slot: int,
        values: tuple,
        xid: TransactionId,
        scn: SCN,
    ) -> None:
        block = self._apply_block(object_id, dba, scn)
        if block is None:
            return
        block.apply_at_slot(slot, values, xid, scn)
        rowid = RowId(dba, slot)
        for column, index in self.indexes.items():
            index.insert(values[self.schema.column_index(column)], rowid)

    def apply_update(
        self,
        object_id: ObjectId,
        dba: DBA,
        slot: int,
        new_values: tuple,
        changed_columns: tuple[str, ...],
        xid: TransactionId,
        scn: SCN,
    ) -> None:
        block = self._apply_block(object_id, dba, scn)
        if block is None:
            return
        old = block.chain(slot).current if slot < block.used_slots else None
        block.apply_at_slot(slot, new_values, xid, scn)
        rowid = RowId(dba, slot)
        for column, index in self.indexes.items():
            if column in changed_columns:
                i = self.schema.column_index(column)
                if old is not None and old.values is not None:
                    index.delete(old.values[i])
                index.insert(new_values[i], rowid)

    def apply_delete(
        self,
        object_id: ObjectId,
        dba: DBA,
        slot: int,
        old_values: tuple,
        xid: TransactionId,
        scn: SCN,
    ) -> None:
        block = self._apply_block(object_id, dba, scn)
        if block is None:
            return
        block.apply_at_slot(slot, None, xid, scn)
        for column, index in self.indexes.items():
            index.delete(old_values[self.schema.column_index(column)])

    def apply_undo(
        self,
        object_id: ObjectId,
        dba: DBA,
        slot: int,
        xid: TransactionId,
        scn: SCN,
    ) -> None:
        """Apply a compensating (rollback) change vector.

        Strips the newest version at the slot if it belongs to ``xid`` and
        repairs index entries by diffing the stripped values against the
        restored current version.
        """
        block = self._apply_block(object_id, dba, scn)
        if block is None:
            return
        stripped = block.undo_write(slot, xid)
        if stripped is None:
            return
        restored = block.chain(slot).current
        rowid = RowId(dba, slot)
        for column, index in self.indexes.items():
            i = self.schema.column_index(column)
            old_key = (
                stripped.values[i] if stripped.values is not None else None
            )
            new_key = (
                restored.values[i]
                if restored is not None and restored.values is not None
                else None
            )
            if old_key == new_key:
                continue
            if old_key is not None:
                index.delete(old_key)
            if new_key is not None:
                index.insert(new_key, rowid)

    def apply_truncate(self, object_id: ObjectId, scn: SCN) -> None:
        """Replay a TRUNCATE change vector against one partition."""
        part = self.partition_by_object_id(object_id)
        self.truncate_partition(part.name, scn)

    # ------------------------------------------------------------------
    # reads (consistent)
    # ------------------------------------------------------------------
    def fetch_by_rowid(
        self,
        rowid: RowId,
        snapshot_scn: SCN,
        txns: TransactionView,
        reader_xid: Optional[TransactionId] = None,
    ) -> Optional[tuple]:
        block = self._block_for(rowid.dba)
        if rowid.slot >= block.used_slots:
            return None
        return visible_values(
            block.chain(rowid.slot), snapshot_scn, txns, reader_xid
        )

    def index_fetch(
        self,
        column: str,
        key: object,
        snapshot_scn: SCN,
        txns: TransactionView,
        reader_xid: Optional[TransactionId] = None,
    ) -> Optional[tuple]:
        """Point lookup through the index, then a consistent row fetch."""
        index = self.indexes.get(column)
        if index is None:
            raise ObjectNotFoundError(f"no index on {self.name}.{column}")
        rowid = index.search(key)
        if rowid is None:
            return None
        return self.fetch_by_rowid(rowid, snapshot_scn, txns, reader_xid)

    def full_scan(
        self,
        snapshot_scn: SCN,
        txns: TransactionView,
        reader_xid: Optional[TransactionId] = None,
        partitions: Optional[list[str]] = None,
    ) -> Iterator[tuple[RowId, tuple]]:
        """Row-format full table scan at a snapshot.

        Deliberately row-at-a-time: this is the slow path whose cost the
        In-Memory Column Store removes.
        """
        names = partitions if partitions is not None else list(self.partitions)
        for pname in names:
            segment = self.partition(pname).segment
            for block in segment.blocks():
                if self.buffer_cache is not None:
                    self.buffer_cache.touch(block.dba)
                for slot, chain in block.chains():
                    values = visible_values(chain, snapshot_scn, txns, reader_xid)
                    if values is not None:
                        yield RowId(block.dba, slot), values

    def truncate_partition(self, name: str, scn: SCN) -> None:
        """TRUNCATE: wipe a partition's rows (index entries removed too)."""
        segment = self.partition(name).segment
        if self.indexes:
            for block in segment.blocks():
                if block.last_change_scn > scn:
                    continue  # post-truncate block: survives the wipe
                for __, chain in block.chains():
                    current = chain.current
                    if current is not None and not current.is_delete:
                        for column, index in self.indexes.items():
                            index.delete(
                                current.values[self.schema.column_index(column)]
                            )
        segment.truncate(scn)

    def __repr__(self) -> str:
        return (
            f"Table({self.name!r}, tenant={self.tenant}, "
            f"partitions={list(self.partitions)})"
        )
