"""Consistent Read: SCN-snapshot visibility over version chains.

Implements Oracle's CR model [Bridge et al., VLDB '97] at row granularity:
a version is visible at snapshot SCN ``s`` iff its writing transaction
committed with commitSCN <= ``s`` (or the reader *is* that transaction).
Commit SCNs are resolved through a :class:`TransactionView`, the minimal
interface both the primary's transaction manager and the standby's
recovered transaction table provide.
"""

from __future__ import annotations

from typing import Optional, Protocol

from repro.common.errors import SnapshotTooOldError
from repro.common.ids import TransactionId
from repro.common.scn import SCN
from repro.rowstore.version import RowVersion, VersionChain


#: Sentinel distinguishing "not looked up yet" from a cached ``None``
#: (uncommitted) commit SCN in the batch memo below.
_UNRESOLVED = object()


class TransactionView(Protocol):
    """What CR needs to know about transactions."""

    def commit_scn_of(self, xid: TransactionId) -> Optional[SCN]:
        """CommitSCN of ``xid``, or ``None`` if uncommitted/aborted/unknown."""
        ...


def visible_version(
    chain: VersionChain,
    snapshot_scn: SCN,
    txns: TransactionView,
    reader_xid: Optional[TransactionId] = None,
) -> Optional[RowVersion]:
    """Return the version of this row visible at ``snapshot_scn``.

    Returns ``None`` when the row did not exist at the snapshot (never
    inserted yet, or the visible version is a delete tombstone -- the caller
    distinguishes via ``is_delete``; here both mean "no visible version",
    so tombstones are mapped to ``None`` for scan convenience? No: the
    tombstone *is* returned, so callers that need to distinguish "deleted"
    from "beyond retention" can).  Raises :class:`SnapshotTooOldError` when
    the walk falls off a truncated chain, i.e. the undo needed to
    reconstruct the row has been discarded.
    """
    for version in chain:  # newest to oldest
        if reader_xid is not None and version.xid == reader_xid:
            # A transaction always sees its own uncommitted changes.
            return version
        commit_scn = txns.commit_scn_of(version.xid)
        if commit_scn is not None and commit_scn <= snapshot_scn:
            return version
    if chain.truncated:
        raise SnapshotTooOldError(
            f"no version visible at SCN {snapshot_scn} on a truncated chain"
        )
    return None


def visible_values(
    chain: VersionChain,
    snapshot_scn: SCN,
    txns: TransactionView,
    reader_xid: Optional[TransactionId] = None,
) -> Optional[tuple]:
    """Like :func:`visible_version` but collapses tombstones to ``None``."""
    version = visible_version(chain, snapshot_scn, txns, reader_xid)
    if version is None or version.is_delete:
        return None
    return version.values


def visible_values_batch(
    block,
    slots,
    snapshot_scn: SCN,
    txns: TransactionView,
) -> list[Optional[tuple]]:
    """Consistent values for many slots of one block, walked in one pass.

    The batch-oriented reconcile path: commitSCN lookups are memoised per
    writing transaction for the duration of the batch (a block's rows are
    typically written by few transactions), and the per-slot closure
    overhead of calling :func:`visible_values` row-by-row is paid once per
    block instead of once per row.  Slots beyond ``block.used_slots`` and
    tombstones come back as ``None``, exactly like :func:`visible_values`.
    """
    used = block.used_slots
    get_chain = block.chain
    commit_scn_of = txns.commit_scn_of
    memo: dict = {}
    memo_get = memo.get
    # Writers reuse one TransactionId object for every row they touch, so
    # consecutive versions usually share ``xid`` *by identity*; caching the
    # last resolution in locals skips even the memo-dict hash per row.
    cached_xid: object = _UNRESOLVED
    cached_scn: Optional[SCN] = None
    out: list[Optional[tuple]] = []
    append = out.append
    for slot in slots:
        if slot >= used:
            append(None)
            continue
        chain = get_chain(slot)
        values = None
        for version in chain:  # newest to oldest
            xid = version.xid
            if xid is cached_xid:
                commit_scn = cached_scn
            else:
                commit_scn = memo_get(xid, _UNRESOLVED)
                if commit_scn is _UNRESOLVED:
                    commit_scn = commit_scn_of(xid)
                    memo[xid] = commit_scn
                cached_xid = xid
                cached_scn = commit_scn
            if commit_scn is not None and commit_scn <= snapshot_scn:
                # a tombstone's values are already None -- exactly the
                # "no visible row" marker this batch returns
                values = version.values
                break
        else:
            if chain.truncated:
                raise SnapshotTooOldError(
                    f"no version visible at SCN {snapshot_scn} "
                    f"on a truncated chain"
                )
        append(values)
    return out
