"""Data blocks: the unit the redo protocol addresses.

Every redo change vector targets exactly one block (by DBA), and the
parallel apply engine hashes DBAs to recovery workers -- so the block is
the granularity at which apply-order is guaranteed.  A block holds a fixed
number of row slots, each with its own version chain.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.common.ids import DBA, ObjectId, RowId, TransactionId
from repro.common.scn import NULL_SCN, SCN
from repro.rowstore.version import RowVersion, VersionChain


class DataBlock:
    """A heap block: ``capacity`` row slots, each a version chain."""

    __slots__ = ("dba", "object_id", "capacity", "_slots", "last_change_scn")

    def __init__(self, dba: DBA, object_id: ObjectId, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("block capacity must be positive")
        self.dba = dba
        self.object_id = object_id
        self.capacity = capacity
        self._slots: list[VersionChain] = []
        self.last_change_scn: SCN = NULL_SCN

    # -- geometry ------------------------------------------------------
    @property
    def used_slots(self) -> int:
        return len(self._slots)

    @property
    def has_free_slot(self) -> bool:
        return len(self._slots) < self.capacity

    def chain(self, slot: int) -> VersionChain:
        return self._slots[slot]

    def chains(self) -> Iterator[tuple[int, VersionChain]]:
        return enumerate(self._slots)

    # -- primary-side mutation ------------------------------------------
    def append_row(
        self, values: tuple, xid: TransactionId, scn: SCN
    ) -> RowId:
        """Insert into the next free slot (primary-side allocation)."""
        if not self.has_free_slot:
            raise RuntimeError(f"block {self.dba} is full")
        chain = VersionChain()
        chain.push(RowVersion(values, xid, scn))
        self._slots.append(chain)
        self._touch(scn)
        return RowId(self.dba, len(self._slots) - 1)

    def write_slot(
        self,
        slot: int,
        values: Optional[tuple],
        xid: TransactionId,
        scn: SCN,
    ) -> None:
        """Push a new version (update, or delete when ``values`` is None)."""
        self._slots[slot].push(RowVersion(values, xid, scn))
        self._touch(scn)

    # -- standby-side (physical apply) -----------------------------------
    def apply_at_slot(
        self,
        slot: int,
        values: Optional[tuple],
        xid: TransactionId,
        scn: SCN,
    ) -> None:
        """Apply a change vector at an exact slot.

        The standby replays the primary's physical layout: an insert CV names
        the slot the primary allocated, so intermediate empty chains may need
        to be materialised (they will be filled by their own CVs, which are
        guaranteed to arrive at this same worker in SCN order).
        """
        while len(self._slots) <= slot:
            if len(self._slots) >= self.capacity:
                raise RuntimeError(f"slot {slot} beyond block capacity")
            self._slots.append(VersionChain())
        self._slots[slot].push(RowVersion(values, xid, scn))
        self._touch(scn)

    def undo_write(self, slot: int, xid: TransactionId) -> Optional[RowVersion]:
        """Strip the newest version at ``slot`` if ``xid`` wrote it.

        One compensating (UNDO) change reverses exactly one original
        change; returns the stripped version so callers can repair
        secondary structures (indexes).
        """
        if slot >= len(self._slots):
            return None
        return self._slots[slot].pop_if(xid)

    def rollback_transaction(self, xid: TransactionId) -> int:
        """Strip ``xid``'s versions from every slot (abort).  Empty chains
        left by rolled-back inserts stay as holes, like Oracle's free slots.
        """
        return sum(chain.rollback_transaction(xid) for chain in self._slots)

    def wipe(self, scn: SCN) -> None:
        """Remove all rows (TRUNCATE's block-level effect)."""
        self._slots = []
        self._touch(scn)

    def prune_undo(self, keep: int) -> int:
        return sum(chain.prune(keep) for chain in self._slots)

    def _touch(self, scn: SCN) -> None:
        if scn > self.last_change_scn:
            self.last_change_scn = scn

    def __repr__(self) -> str:
        return (
            f"DataBlock(dba={self.dba}, obj={self.object_id}, "
            f"{self.used_slots}/{self.capacity} slots)"
        )
