"""The database buffer cache.

The paper is explicit that "an important part of the setup is ensuring that
the Oracle database buffer cache is sized appropriately to avoid any
physical I/O" -- the 100x speedups in Figure 9 are CPU effects (row-format
vs column-format scan), not disk effects.  We model the cache anyway so the
cost model can (a) verify that the benchmark configurations really are
I/O-free, and (b) charge a simulated penalty when a configuration is
mis-sized.

Blocks permanently live in the :class:`BlockStore` ("disk"); the cache
tracks which DBAs are resident and applies LRU eviction.  A miss charges a
simulated read cost.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.common.ids import DBA

#: Simulated seconds to read one block from disk on a miss.
DEFAULT_MISS_COST = 0.0002


class BufferCache:
    """LRU cache of resident DBAs with hit/miss accounting."""

    def __init__(
        self, capacity_blocks: int | None = None, miss_cost: float = DEFAULT_MISS_COST
    ) -> None:
        #: None = unlimited (every touched block stays resident).
        self.capacity_blocks = capacity_blocks
        self.miss_cost = miss_cost
        self._resident: OrderedDict[DBA, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def touch(self, dba: DBA) -> float:
        """Access a block; returns the simulated I/O cost (0.0 on a hit)."""
        if dba in self._resident:
            self._resident.move_to_end(dba)
            self.hits += 1
            return 0.0
        self.misses += 1
        self._resident[dba] = None
        if (
            self.capacity_blocks is not None
            and len(self._resident) > self.capacity_blocks
        ):
            self._resident.popitem(last=False)
        return self.miss_cost

    def touch_many(self, dbas) -> float:
        """Access a sequence of blocks; returns total simulated I/O cost."""
        return sum(self.touch(dba) for dba in dbas)

    def invalidate(self, dba: DBA) -> None:
        self._resident.pop(dba, None)

    @property
    def resident_blocks(self) -> int:
        return len(self._resident)

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 1.0

    def __repr__(self) -> str:
        return (
            f"BufferCache(resident={self.resident_blocks}, "
            f"hit_ratio={self.hit_ratio:.3f})"
        )
