"""Undo retention: bounding version-chain growth.

Every update pushes a version; without pruning, hot rows grow unbounded
chains.  Oracle bounds undo by retention time; we bound by *versions per
row* (``RowStoreConfig.undo_retention_versions``).  A background
:class:`UndoRetentionManager` sweeps the block store and prunes each
chain to the newest K versions.  A consistent read that later needs a
pruned version fails with :class:`~repro.common.errors.SnapshotTooOldError`
-- the ORA-01555 analogue -- rather than silently returning wrong data.

Safety: queries and IMCU population on both databases always read at
*recent* snapshots (current SCN / published QuerySCN), so the default
retention of 1024 versions is far beyond anything they can need; the
sweep exists to bound memory in long OLTAP runs.
"""

from __future__ import annotations

from typing import Optional

from repro.rowstore.segment import BlockStore
from repro.sim.cpu import CpuNode
from repro.sim.scheduler import Actor, Scheduler

#: Simulated CPU seconds per pruned version.
PRUNE_COST_PER_VERSION = 1e-7


class UndoRetentionManager(Actor):
    """Background sweeper pruning version chains to a retention bound."""

    def __init__(
        self,
        store: BlockStore,
        keep_versions: int = 1024,
        interval: float = 0.5,
        name: str = "undo-retention",
        node: Optional[CpuNode] = None,
    ) -> None:
        if keep_versions < 1:
            raise ValueError("must retain at least the current version")
        self.store = store
        self.keep_versions = keep_versions
        self.interval = interval
        self.name = name
        self.node = node
        self.idle_backoff = interval
        self._last_sweep = -1.0
        self.versions_pruned = 0
        self.sweeps = 0

    def sweep(self) -> int:
        """Prune every block once; returns versions dropped."""
        dropped = 0
        for block in self.store._blocks.values():
            dropped += block.prune_undo(self.keep_versions)
        self.sweeps += 1
        self.versions_pruned += dropped
        return dropped

    def step(self, sched: Scheduler) -> Optional[float]:
        if sched.now - self._last_sweep < self.interval:
            return None
        self._last_sweep = sched.now
        dropped = self.sweep()
        if dropped == 0:
            return 1e-6
        return PRUNE_COST_PER_VERSION * dropped
