"""Simulated wall clock."""

from __future__ import annotations


class SimClock:
    """Monotonic simulated time in seconds.

    Only the scheduler advances the clock; everything else reads ``now``.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> None:
        """Move time forward to ``t``.  Moving backwards is a scheduler bug."""
        if t < self._now:
            raise ValueError(f"clock cannot move backwards: {t} < {self._now}")
        self._now = t

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f})"
