"""Per-node CPU accounting.

The paper reports CPU usage on the primary and the standby hosts separately
(e.g. "the CPU usage on the Primary Database reduces from 11.7% ... to 4.7%
when scans are offloaded").  Every actor in the simulation is pinned to a
:class:`CpuNode`; the scheduler charges the cost of each step to that node.
Utilisation over a window is busy-seconds divided by (window x cores).
"""

from __future__ import annotations


class CpuNode:
    """One host (or RAC instance) with ``n_cpus`` cores."""

    def __init__(self, name: str, n_cpus: int = 16) -> None:
        if n_cpus < 1:
            raise ValueError("a node needs at least one CPU")
        self.name = name
        self.n_cpus = n_cpus
        self.busy_seconds = 0.0

    def charge(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot charge negative CPU time")
        self.busy_seconds += seconds

    def utilisation(self, window_seconds: float, busy_at_start: float = 0.0) -> float:
        """Percent CPU utilisation over a window.

        ``busy_at_start`` is the node's ``busy_seconds`` captured at the
        start of the window, allowing interval measurements.
        """
        if window_seconds <= 0:
            return 0.0
        busy = self.busy_seconds - busy_at_start
        return 100.0 * busy / (window_seconds * self.n_cpus)

    def __repr__(self) -> str:
        return f"CpuNode({self.name!r}, cpus={self.n_cpus}, busy={self.busy_seconds:.3f}s)"
