"""Event-driven cooperative scheduler.

Each :class:`Actor` owns a local timeline.  ``step`` returns the simulated
cost (seconds) of the work it just did, or ``None`` if it had nothing to do.
The scheduler keeps actors in a priority queue ordered by the time at which
they next become runnable and always dispatches the earliest one -- i.e. a
classic discrete-event simulation in which actors genuinely overlap in
simulated time even though Python executes them one at a time.

Two sources of controlled nondeterminism create the worker-rate skew that
the paper's QuerySCN "leapfrogging" depends on:

* per-actor ``speed`` factors (a slow worker's steps cost more), and
* optional jitter drawn from the scheduler's seeded RNG.

Both are reproducible from the seed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

from repro.sim.clock import SimClock
from repro.sim.cpu import CpuNode
import random


class Actor:
    """Base class for every concurrent entity in the simulation."""

    #: Human-readable name (shows up in traces and metrics).
    name: str = "actor"
    #: Node whose CPU this actor consumes; ``None`` means free work.
    node: Optional[CpuNode] = None
    #: Cost multiplier: 2.0 means this actor is half as fast.
    speed: float = 1.0
    #: How long an actor sleeps after a step that found no work.
    idle_backoff: float = 0.001

    def step(self, sched: "Scheduler") -> Optional[float]:
        """Do one quantum of work; return its cost in seconds or ``None``."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class FunctionActor(Actor):
    """Wrap a plain callable as an actor (handy in tests)."""

    def __init__(
        self,
        fn: Callable[["Scheduler"], Optional[float]],
        name: str = "fn",
        node: Optional[CpuNode] = None,
        speed: float = 1.0,
    ) -> None:
        self._fn = fn
        self.name = name
        self.node = node
        self.speed = speed

    def step(self, sched: "Scheduler") -> Optional[float]:
        return self._fn(sched)


class Scheduler:
    """Dispatches actors and timed events on a shared simulated clock."""

    def __init__(self, seed: int = 0, jitter: float = 0.0) -> None:
        self.clock = SimClock()
        self.rng = random.Random(seed)
        #: Fractional jitter applied to every step cost (0.1 => +/-10%).
        self.jitter = jitter
        self._counter = itertools.count()
        # Heap entries: (ready_time, tie_break, kind, payload, generation)
        # kind 0 = actor, kind 1 = one-shot event callback.  An actor's
        # entry is live only while its generation matches ``_gen`` --
        # ``kick``/``add_actor`` bump the generation, superseding any
        # entry still sitting in the heap (lazily skipped on pop).
        self._heap: list[tuple[float, int, int, object, int]] = []
        self._actors: list[Actor] = []
        self._removed: set[int] = set()
        self._gen: dict[int, int] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def add_actor(self, actor: Actor, start_at: float | None = None) -> None:
        """Register ``actor``; it becomes runnable at ``start_at`` (now).

        Re-adding a previously removed actor resumes it.
        """
        self._removed.discard(id(actor))
        if actor not in self._actors:
            self._actors.append(actor)
        gen = self._gen.get(id(actor), 0) + 1
        self._gen[id(actor)] = gen
        when = self.clock.now if start_at is None else start_at
        heapq.heappush(self._heap, (when, next(self._counter), 0, actor, gen))

    def remove_actor(self, actor: Actor) -> None:
        """Deregister ``actor``; pending heap entries are lazily skipped."""
        if actor in self._actors:
            self._actors.remove(actor)
        self._removed.add(id(actor))

    def kick(self, actor: Actor, delay: float = 0.0) -> bool:
        """Make ``actor`` runnable at now (+``delay``), superseding its
        pending wakeup (typically an idle-backoff sleep).

        Used by work queues to wake sleeping consumers the moment work
        arrives -- e.g. query workers when a scan's morsels are enqueued.
        Returns False (and does nothing) if the actor is not registered.
        """
        key = id(actor)
        if key in self._removed or actor not in self._actors:
            return False
        gen = self._gen.get(key, 0) + 1
        self._gen[key] = gen
        heapq.heappush(
            self._heap,
            (self.clock.now + delay, next(self._counter), 0, actor, gen),
        )
        return True

    def call_at(self, when: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` once at simulated time ``when`` (e.g. message arrival)."""
        if when < self.clock.now:
            when = self.clock.now
        heapq.heappush(self._heap, (when, next(self._counter), 1, fn, 0))

    def call_after(self, delay: float, fn: Callable[[], None]) -> None:
        self.call_at(self.clock.now + delay, fn)

    @property
    def actors(self) -> list[Actor]:
        return list(self._actors)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _dispatch_one(self) -> bool:
        """Pop and run the earliest heap entry.  Returns False if empty."""
        while self._heap:
            when, __, kind, payload, gen = heapq.heappop(self._heap)
            if kind == 0:
                if id(payload) in self._removed:
                    continue
                if gen != self._gen.get(id(payload)):
                    continue  # superseded by a kick / re-add
            self.clock.advance_to(when)
            if kind == 1:
                payload()  # type: ignore[operator]
                return True
            actor: Actor = payload  # type: ignore[assignment]
            cost = actor.step(self)
            if cost is None:
                next_time = when + actor.idle_backoff
            else:
                cost *= actor.speed
                if self.jitter:
                    cost *= 1.0 + self.rng.uniform(-self.jitter, self.jitter)
                if actor.node is not None:
                    actor.node.charge(cost)
                next_time = when + max(cost, 1e-9)
            # re-queue with the generation we popped: if the actor kicked
            # itself (or was re-added) during the step, this entry is
            # stale and the newer one wins.
            heapq.heappush(
                self._heap, (next_time, next(self._counter), 0, actor, gen)
            )
            return True
        return False

    def run_until(self, t: float) -> None:
        """Run the simulation until the clock reaches ``t``."""
        while self._heap and self._heap[0][0] <= t:
            self._dispatch_one()
        if self.clock.now < t:
            self.clock.advance_to(t)

    def run_for(self, duration: float) -> None:
        self.run_until(self.clock.now + duration)

    def run_steps(self, n: int) -> None:
        """Dispatch exactly ``n`` heap entries (for fine-grained tests)."""
        for __ in range(n):
            if not self._dispatch_one():
                break

    def run_until_condition(
        self, predicate: Callable[[], bool], max_time: float = 1e6
    ) -> bool:
        """Run until ``predicate()`` is true; False if ``max_time`` expired."""
        deadline = self.clock.now + max_time
        while not predicate():
            if not self._heap or self._heap[0][0] > deadline:
                return False
            self._dispatch_one()
        return True

    @property
    def now(self) -> float:
        return self.clock.now
