"""Deterministic discrete-event simulation kernel.

The paper's system is massively concurrent: OLTP sessions on the primary,
log shipping, a log merger, N parallel recovery workers, a recovery
coordinator, population workers and query sessions all race each other, and
the interesting correctness hazards (QuerySCN leapfrogging, journal flush
ordering, quiesce windows) come exactly from that racing.

Rather than OS threads -- which make failures unreproducible -- every
concurrent entity is an :class:`Actor` with a ``step`` method, and a
:class:`Scheduler` interleaves actors on a simulated clock.  Each actor has
its own local timeline; the scheduler always runs the actor whose timeline
is furthest behind, which is a standard discrete-event simulation of real
parallelism.  Given one seed, a run is bit-for-bit reproducible.

CPU usage is accounted by charging each step's returned cost to the
:class:`CpuNode` the actor runs on, which is how the harness reproduces the
paper's CPU-transfer measurements (section IV-A/B).
"""

from repro.sim.clock import SimClock
from repro.sim.cpu import CpuNode
from repro.sim.scheduler import Actor, FunctionActor, Scheduler

__all__ = ["SimClock", "CpuNode", "Actor", "FunctionActor", "Scheduler"]
