"""The transaction manager: DML execution + redo generation.

One manager runs per primary instance (RAC redo thread).  All managers in
a cluster share the SCN clock, the transaction table and the set of
IMCS-enabled objects (used for the specialized commit-record flag).

Rollback is modelled the way Oracle really does it: applying undo
*generates more redo* -- each original change gets a compensating UNDO
change vector, followed by an abort control record.  The standby therefore
learns about rollbacks purely from the redo stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.common.errors import InvalidStateError
from repro.common.ids import InstanceId, ObjectId, RowId, TenantId, TransactionId
from repro.common.scn import SCN, SCNClock
from repro.redo.log import RedoLog
from repro.redo.records import (
    CVOp,
    ChangeVector,
    CommitPayload,
    DeletePayload,
    InsertPayload,
    RedoRecord,
    UndoPayload,
    UpdatePayload,
    txn_table_dba,
)
from repro.rowstore.table import Table
from repro.txn.table import TransactionTable, TxnState


@dataclass(slots=True)
class ChangeRecord:
    """One DML change, retained for rollback and commit-time hooks."""

    kind: CVOp
    table: Table
    object_id: ObjectId
    rowid: RowId
    old_values: Optional[tuple]
    new_values: Optional[tuple]
    changed_columns: tuple[str, ...]
    scn: SCN


@dataclass(slots=True)
class Transaction:
    """A client transaction on one primary instance."""

    xid: TransactionId
    tenant: TenantId
    state: TxnState = TxnState.ACTIVE
    began_in_redo: bool = False
    commit_scn: SCN = 0
    touched_objects: set[ObjectId] = field(default_factory=set)
    changes: list[ChangeRecord] = field(default_factory=list)

    @property
    def is_active(self) -> bool:
        return self.state in (TxnState.ACTIVE, TxnState.PREPARED)


class TransactionManager:
    """Runs transactions for one primary instance."""

    def __init__(
        self,
        instance: InstanceId,
        clock: SCNClock,
        txn_table: TransactionTable,
        redo_log: RedoLog,
        imcs_enabled_objects: set[ObjectId],
        specialized_commit_redo: bool = True,
    ) -> None:
        self.instance = instance
        self.clock = clock
        self.txn_table = txn_table
        self.redo_log = redo_log
        #: Objects enabled for IMCS population on *any* database of the
        #: configuration (primary or standby) -- drives the III-E flag.
        self.imcs_enabled_objects = imcs_enabled_objects
        self.specialized_commit_redo = specialized_commit_redo
        self._next_sequence = 1
        #: Callbacks fired after a commit: fn(txn, commit_scn).  The
        #: primary's own DBIM transaction manager hooks in here to
        #: invalidate SMU rows.
        self.on_commit: list[Callable[[Transaction, SCN], None]] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def begin(self, tenant: TenantId = 0) -> Transaction:
        xid = TransactionId(self.instance, self._next_sequence)
        self._next_sequence += 1
        self.txn_table.begin(xid)
        return Transaction(xid=xid, tenant=tenant)

    def _require_active(self, txn: Transaction) -> None:
        if not txn.is_active:
            raise InvalidStateError(f"{txn.xid} is {txn.state}, not active")

    def _emit(self, scn: SCN, cvs: list[ChangeVector]) -> None:
        self.redo_log.append(RedoRecord(scn, self.instance, tuple(cvs)))

    def _begin_cv_if_needed(self, txn: Transaction) -> list[ChangeVector]:
        """The first change of a transaction carries the begin control CV
        (the journal's anchor node is created when it is mined)."""
        if txn.began_in_redo:
            return []
        txn.began_in_redo = True
        return [
            ChangeVector(
                CVOp.TXN_BEGIN,
                txn_table_dba(self.instance),
                object_id=0,
                tenant=txn.tenant,
                xid=txn.xid,
            )
        ]

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------
    def insert(
        self,
        txn: Transaction,
        table: Table,
        values: tuple,
        partition: Optional[str] = None,
    ) -> RowId:
        self._require_active(txn)
        scn = self.clock.next()
        object_id, rowid = table.insert_row(values, txn.xid, scn, partition)
        cvs = self._begin_cv_if_needed(txn)
        cvs.append(
            ChangeVector(
                CVOp.INSERT,
                rowid.dba,
                object_id,
                txn.tenant,
                txn.xid,
                InsertPayload(rowid.slot, values),
            )
        )
        self._emit(scn, cvs)
        txn.touched_objects.add(object_id)
        txn.changes.append(
            ChangeRecord(
                CVOp.INSERT, table, object_id, rowid, None, values, (), scn
            )
        )
        return rowid

    def update(
        self,
        txn: Transaction,
        table: Table,
        rowid: RowId,
        changes: dict[str, object],
    ) -> None:
        self._require_active(txn)
        scn = self.clock.next()
        object_id, old_values, new_values = table.update_row(
            rowid, changes, txn.xid, scn, self.txn_table
        )
        changed = tuple(changes)
        cvs = self._begin_cv_if_needed(txn)
        cvs.append(
            ChangeVector(
                CVOp.UPDATE,
                rowid.dba,
                object_id,
                txn.tenant,
                txn.xid,
                UpdatePayload(rowid.slot, new_values, changed),
            )
        )
        self._emit(scn, cvs)
        txn.touched_objects.add(object_id)
        txn.changes.append(
            ChangeRecord(
                CVOp.UPDATE, table, object_id, rowid,
                old_values, new_values, changed, scn,
            )
        )

    def delete(self, txn: Transaction, table: Table, rowid: RowId) -> None:
        self._require_active(txn)
        scn = self.clock.next()
        object_id, old_values = table.delete_row(
            rowid, txn.xid, scn, self.txn_table
        )
        cvs = self._begin_cv_if_needed(txn)
        cvs.append(
            ChangeVector(
                CVOp.DELETE,
                rowid.dba,
                object_id,
                txn.tenant,
                txn.xid,
                DeletePayload(rowid.slot, old_values),
            )
        )
        self._emit(scn, cvs)
        txn.touched_objects.add(object_id)
        txn.changes.append(
            ChangeRecord(
                CVOp.DELETE, table, object_id, rowid,
                old_values, None, (), scn,
            )
        )

    # ------------------------------------------------------------------
    # end of transaction
    # ------------------------------------------------------------------
    def prepare(self, txn: Transaction) -> None:
        """Two-phase-commit prepare: emits a prepare control record."""
        self._require_active(txn)
        if txn.state is TxnState.PREPARED:
            return
        self.txn_table.prepare(txn.xid)
        txn.state = TxnState.PREPARED
        if txn.began_in_redo:
            scn = self.clock.next()
            self._emit(
                scn,
                [
                    ChangeVector(
                        CVOp.TXN_PREPARE,
                        txn_table_dba(self.instance),
                        object_id=0,
                        tenant=txn.tenant,
                        xid=txn.xid,
                    )
                ],
            )

    def commit(self, txn: Transaction) -> SCN:
        """Commit; returns the commitSCN.

        Read-only transactions (no redo generated) commit silently, like
        Oracle.  Otherwise a commit record is written whose SCN *is* the
        commitSCN, annotated with the modifies-IMCS flag when specialized
        redo generation is on (section III-E).
        """
        self._require_active(txn)
        commit_scn = self.clock.next()
        txn.commit_scn = commit_scn
        txn.state = TxnState.COMMITTED
        self.txn_table.commit(txn.xid, commit_scn)
        if txn.began_in_redo:
            if self.specialized_commit_redo:
                flag: Optional[bool] = bool(
                    txn.touched_objects & self.imcs_enabled_objects
                )
            else:
                flag = None
            self._emit(
                commit_scn,
                [
                    ChangeVector(
                        CVOp.TXN_COMMIT,
                        txn_table_dba(self.instance),
                        object_id=0,
                        tenant=txn.tenant,
                        xid=txn.xid,
                        payload=CommitPayload(commit_scn, flag),
                    )
                ],
            )
        for hook in self.on_commit:
            hook(txn, commit_scn)
        return commit_scn

    def rollback(self, txn: Transaction) -> None:
        """Abort: apply undo (generating compensating redo) then mark
        the transaction aborted."""
        self._require_active(txn)
        for change in reversed(txn.changes):
            scn = self.clock.next()
            change.table.apply_undo(
                change.object_id,
                change.rowid.dba,
                change.rowid.slot,
                txn.xid,
                scn,
            )
            self._emit(
                scn,
                [
                    ChangeVector(
                        CVOp.UNDO,
                        change.rowid.dba,
                        change.object_id,
                        txn.tenant,
                        txn.xid,
                        UndoPayload(change.rowid.slot),
                    )
                ],
            )
        txn.state = TxnState.ABORTED
        self.txn_table.abort(txn.xid)
        if txn.began_in_redo:
            scn = self.clock.next()
            self._emit(
                scn,
                [
                    ChangeVector(
                        CVOp.TXN_ABORT,
                        txn_table_dba(self.instance),
                        object_id=0,
                        tenant=txn.tenant,
                        xid=txn.xid,
                    )
                ],
            )
