"""Transactions: lifecycle, commit SCN assignment and redo generation.

The transaction manager is the primary-side glue between the row store and
the redo layer: every DML statement mutates blocks *and* emits the change
vectors the standby will replay.  Commit records carry the section III-E
"modifies an IMCS-enabled object" flag when specialized redo generation is
enabled.
"""

from repro.txn.table import TransactionTable, TxnState
from repro.txn.manager import Transaction, TransactionManager, ChangeRecord

__all__ = [
    "TransactionTable",
    "TxnState",
    "Transaction",
    "TransactionManager",
    "ChangeRecord",
]
