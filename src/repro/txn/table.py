"""The transaction table: cluster-wide transaction state.

Implements the :class:`~repro.rowstore.cr.TransactionView` protocol used by
consistent read.  The primary's transaction manager writes it directly; the
standby's copy is *recovered* -- populated exclusively by replaying
transaction-control change vectors (begin/prepare/commit/abort), exactly as
a physical standby learns transaction outcomes only from redo.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.common.errors import InvalidStateError
from repro.common.ids import TransactionId
from repro.common.scn import SCN


class TxnState(enum.Enum):
    ACTIVE = "active"
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"


class TransactionTable:
    """Maps transaction ids to their state and commit SCN."""

    def __init__(self) -> None:
        self._states: dict[TransactionId, TxnState] = {}
        self._commit_scns: dict[TransactionId, SCN] = {}

    # -- writes ----------------------------------------------------------
    def begin(self, xid: TransactionId) -> None:
        if xid in self._states:
            raise InvalidStateError(f"{xid} already exists")
        self._states[xid] = TxnState.ACTIVE

    def prepare(self, xid: TransactionId) -> None:
        self._require(xid, TxnState.ACTIVE)
        self._states[xid] = TxnState.PREPARED

    def commit(self, xid: TransactionId, commit_scn: SCN) -> None:
        state = self._states.get(xid)
        if state in (TxnState.COMMITTED, TxnState.ABORTED):
            raise InvalidStateError(f"{xid} already finished ({state})")
        self._states[xid] = TxnState.COMMITTED
        self._commit_scns[xid] = commit_scn

    def abort(self, xid: TransactionId) -> None:
        state = self._states.get(xid)
        if state in (TxnState.COMMITTED, TxnState.ABORTED):
            raise InvalidStateError(f"{xid} already finished ({state})")
        self._states[xid] = TxnState.ABORTED

    def ensure_known(self, xid: TransactionId) -> None:
        """Record a transaction seen mid-flight (standby apply may see a
        data CV before any control CV after a restart from a backup)."""
        self._states.setdefault(xid, TxnState.ACTIVE)

    def _require(self, xid: TransactionId, state: TxnState) -> None:
        if self._states.get(xid) is not state:
            raise InvalidStateError(
                f"{xid} is {self._states.get(xid)}, expected {state}"
            )

    # -- reads (TransactionView) ------------------------------------------
    def commit_scn_of(self, xid: TransactionId) -> Optional[SCN]:
        return self._commit_scns.get(xid)

    def state_of(self, xid: TransactionId) -> Optional[TxnState]:
        return self._states.get(xid)

    def is_finished(self, xid: TransactionId) -> bool:
        return self._states.get(xid) in (TxnState.COMMITTED, TxnState.ABORTED)

    def open_transactions(self) -> list[TransactionId]:
        """Transactions still ACTIVE or PREPARED (e.g. for invariant
        checks: the journal may buffer exactly these)."""
        return [
            xid
            for xid, state in self._states.items()
            if state in (TxnState.ACTIVE, TxnState.PREPARED)
        ]

    def __len__(self) -> int:
        return len(self._states)
